// Tests for the command-line flag parser used by the tools/ binaries.
#include <gtest/gtest.h>

#include "common/flags.h"

namespace rl4oasd {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

class FlagsTest : public ::testing::Test {
 protected:
  FlagsTest() : flags_("prog", "test program") {
    flags_.AddString("name", "default", "a string");
    flags_.AddInt("count", 7, "an int");
    flags_.AddDouble("ratio", 0.5, "a double");
    flags_.AddBool("verbose", false, "a bool");
    flags_.AddBool("color", true, "an on-by-default bool");
  }

  Status Parse(std::initializer_list<const char*> args) {
    auto argv = Argv(args);
    return flags_.Parse(static_cast<int>(argv.size()), argv.data());
  }

  FlagSet flags_;
};

TEST_F(FlagsTest, DefaultsWhenUnset) {
  ASSERT_TRUE(Parse({}).ok());
  EXPECT_EQ(flags_.GetString("name"), "default");
  EXPECT_EQ(flags_.GetInt("count"), 7);
  EXPECT_EQ(flags_.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(flags_.GetBool("verbose"));
  EXPECT_TRUE(flags_.GetBool("color"));
  EXPECT_FALSE(flags_.IsSet("name"));
}

TEST_F(FlagsTest, EqualsSyntax) {
  ASSERT_TRUE(Parse({"--name=abc", "--count=-3", "--ratio=0.25",
                     "--verbose=true"})
                  .ok());
  EXPECT_EQ(flags_.GetString("name"), "abc");
  EXPECT_EQ(flags_.GetInt("count"), -3);
  EXPECT_EQ(flags_.GetDouble("ratio"), 0.25);
  EXPECT_TRUE(flags_.GetBool("verbose"));
  EXPECT_TRUE(flags_.IsSet("count"));
}

TEST_F(FlagsTest, SpaceSyntax) {
  ASSERT_TRUE(Parse({"--name", "xyz", "--count", "42"}).ok());
  EXPECT_EQ(flags_.GetString("name"), "xyz");
  EXPECT_EQ(flags_.GetInt("count"), 42);
}

TEST_F(FlagsTest, BareBoolean) {
  ASSERT_TRUE(Parse({"--verbose"}).ok());
  EXPECT_TRUE(flags_.GetBool("verbose"));
}

TEST_F(FlagsTest, NoPrefixDisablesBoolean) {
  ASSERT_TRUE(Parse({"--no-color"}).ok());
  EXPECT_FALSE(flags_.GetBool("color"));
}

TEST_F(FlagsTest, BareBooleanFollowedByPositional) {
  // "output.txt" is not a bool literal, so it stays positional.
  ASSERT_TRUE(Parse({"--verbose", "output.txt"}).ok());
  EXPECT_TRUE(flags_.GetBool("verbose"));
  ASSERT_EQ(flags_.positional().size(), 1u);
  EXPECT_EQ(flags_.positional()[0], "output.txt");
}

TEST_F(FlagsTest, BooleanConsumesExplicitValueToken) {
  ASSERT_TRUE(Parse({"--verbose", "false"}).ok());
  EXPECT_FALSE(flags_.GetBool("verbose"));
  EXPECT_TRUE(flags_.positional().empty());
}

TEST_F(FlagsTest, PositionalArguments) {
  ASSERT_TRUE(Parse({"one", "--count=1", "two"}).ok());
  EXPECT_EQ(flags_.positional(),
            (std::vector<std::string>{"one", "two"}));
}

TEST_F(FlagsTest, UnknownFlagRejected) {
  const Status st = Parse({"--nope=1"});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("--nope"), std::string::npos);
}

TEST_F(FlagsTest, MalformedIntRejected) {
  EXPECT_FALSE(Parse({"--count=12x"}).ok());
  EXPECT_FALSE(Parse({"--count=1.5"}).ok());
}

TEST_F(FlagsTest, MalformedDoubleRejected) {
  EXPECT_FALSE(Parse({"--ratio=abc"}).ok());
  EXPECT_FALSE(Parse({"--ratio="}).ok());
}

TEST_F(FlagsTest, MalformedBoolRejected) {
  EXPECT_FALSE(Parse({"--verbose=maybe"}).ok());
}

TEST_F(FlagsTest, MissingValueRejected) {
  EXPECT_FALSE(Parse({"--count"}).ok());
}

TEST_F(FlagsTest, HelpShortCircuits) {
  ASSERT_TRUE(Parse({"--help", "--nope"}).ok());
  EXPECT_TRUE(flags_.help_requested());
}

TEST_F(FlagsTest, HelpTextListsFlags) {
  const std::string help = flags_.Help();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("default 7"), std::string::npos);
  EXPECT_NE(help.find("a double"), std::string::npos);
}

TEST_F(FlagsTest, BoolAcceptsManySpellings) {
  ASSERT_TRUE(Parse({"--verbose=yes", "--color=off"}).ok());
  EXPECT_TRUE(flags_.GetBool("verbose"));
  EXPECT_FALSE(flags_.GetBool("color"));
}

}  // namespace
}  // namespace rl4oasd
