// Golden end-to-end regression test: a fixed-seed gen → train(tiny) →
// detect run whose anomalous-run output is checked into tests/data/, so
// refactors of the model path (like the batched-inference GEMM path) are
// diffable — any change to what the trained detector reports shows up as a
// golden diff instead of silently shifting quality metrics.
//
// The golden file pins the *discrete* output (per-trajectory anomalous
// runs), not floats: argmax decisions of a trained model are stable under
// the <= 1e-6 float-equivalence contract of the batched kernels, while raw
// probabilities would churn on any reordering.
//
// Regenerate after an intentional behaviour change (see tests/README.md):
//   RL4OASD_UPDATE_GOLDEN=1 ./build/tests/golden_regression_test
// and commit the tests/data/golden_detect_runs.txt diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/rl4oasd.h"
#include "serve/fleet.h"
#include "test_util.h"
#include "traj/types.h"

namespace rl4oasd {
namespace {

constexpr const char* kGoldenPath =
    RL4OASD_TEST_DATA_DIR "/golden_detect_runs.txt";

/// The fixed-seed tiny pipeline whose output the golden file pins. Any
/// change here invalidates the golden file — bump deliberately, regenerate,
/// and commit both together.
core::Rl4OasdConfig GoldenConfig() {
  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  cfg.rsr.embed_dim = 16;
  cfg.rsr.nrf_dim = 8;
  cfg.rsr.hidden_dim = 16;
  cfg.asd.label_dim = 8;
  cfg.embedding.dim = 16;
  cfg.embedding.epochs = 1;
  cfg.pretrain_samples = 60;
  cfg.pretrain_epochs = 2;
  cfg.joint_samples = 120;
  cfg.epochs_per_traj = 1;
  return cfg;
}

/// One line per detected trajectory: "<id> <run> <run> ..." with runs as
/// "[begin,end)" and "-" when the trajectory is clean.
std::string RenderRuns(int64_t id,
                       const std::vector<traj::Subtrajectory>& runs) {
  std::ostringstream os;
  os << id;
  if (runs.empty()) {
    os << " -";
  } else {
    for (const auto& r : runs) os << " [" << r.begin << "," << r.end << ")";
  }
  return os.str();
}

TEST(GoldenRegressionTest, DetectOutputMatchesGoldenFile) {
  const auto net = testing::SmallGrid();
  const auto dataset = testing::SmallDataset(net, 6, 0.12);
  core::Rl4Oasd model(&net, GoldenConfig());
  model.Fit(dataset);

  // Detect the whole dataset via the scalar streaming path, and in
  // parallel replay every trip through the micro-batched fleet ingest: the
  // golden file pins the scalar output, the monitor comparison pins
  // batched == scalar end to end.
  serve::FleetMonitor monitor(&model, {}, nullptr);
  std::vector<std::string> lines;
  size_t batched_mismatches = 0;
  std::vector<serve::FleetPoint> points;
  std::vector<const traj::LabeledTrajectory*> wave;
  const auto& trajs = dataset.trajs();
  for (size_t begin = 0; begin < trajs.size(); begin += 32) {
    const size_t end = std::min(trajs.size(), begin + 32);
    wave.clear();
    for (size_t i = begin; i < end; ++i) {
      if (trajs[i].traj.edges.size() < 2) continue;
      wave.push_back(&trajs[i]);
      ASSERT_TRUE(monitor
                      .StartTrip(trajs[i].traj.id, trajs[i].traj.sd(),
                                 trajs[i].traj.start_time)
                      .ok());
    }
    size_t longest = 0;
    for (const auto* lt : wave) {
      longest = std::max(longest, lt->traj.edges.size());
    }
    for (size_t p = 0; p < longest; ++p) {
      points.clear();
      for (const auto* lt : wave) {
        if (p < lt->traj.edges.size()) {
          points.push_back({lt->traj.id, lt->traj.edges[p],
                            lt->traj.start_time + 2.0 * p});
        }
      }
      (void)monitor.FeedBatch(points);
    }
    for (const auto* lt : wave) {
      const auto scalar_labels = model.Detect(lt->traj);
      lines.push_back(RenderRuns(lt->traj.id,
                                 traj::ExtractAnomalousRuns(scalar_labels)));
      auto streamed = monitor.EndTrip(lt->traj.id);
      ASSERT_TRUE(streamed.ok());
      if (*streamed != scalar_labels) ++batched_mismatches;
    }
  }
  EXPECT_EQ(batched_mismatches, 0u)
      << "micro-batched fleet ingest diverged from scalar detection";

  std::ostringstream rendered;
  for (const auto& line : lines) rendered << line << "\n";

  if (std::getenv("RL4OASD_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << rendered.str();
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath
                 << " — review and commit the diff";
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.good())
      << "missing golden file " << kGoldenPath
      << " — run RL4OASD_UPDATE_GOLDEN=1 ./build/tests/golden_regression_test";
  std::stringstream golden;
  golden << in.rdbuf();

  // Line-by-line comparison so a failure names the first diverging
  // trajectory instead of dumping both files.
  std::istringstream got(rendered.str());
  std::istringstream want(golden.str());
  std::string got_line;
  std::string want_line;
  size_t line_no = 0;
  while (std::getline(want, want_line)) {
    ++line_no;
    ASSERT_TRUE(std::getline(got, got_line))
        << "output ends early at golden line " << line_no << ": "
        << want_line;
    EXPECT_EQ(got_line, want_line) << "first divergence at line " << line_no;
    if (got_line != want_line) break;  // one precise diff beats hundreds
  }
  if (got_line == want_line) {
    EXPECT_FALSE(std::getline(got, got_line))
        << "output has extra lines past the golden file: " << got_line;
  }
}

}  // namespace
}  // namespace rl4oasd
