// Tests for the GRU cell and the RecurrentNet abstraction: BPTT gradients
// against finite differences, streaming/sequence consistency, and the
// factory's name scheme that keeps GRU and LSTM checkpoints apart.
#include <cmath>

#include <gtest/gtest.h>

#include "nn/adam.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/rnn.h"

namespace rl4oasd::nn {
namespace {

constexpr float kFdEps = 1e-2f;
constexpr float kFdTol = 2e-2f;  // relative tolerance for float32 FD

TEST(GruGradientCheck, ParametersAndInputs) {
  Rng rng(9);
  const size_t I = 3, H = 4, T = 5;
  Gru gru("g", I, H, &rng);

  std::vector<Vec> xs(T, Vec(I));
  for (auto& x : xs) {
    for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  }
  std::vector<Vec> d_h(T, Vec(H));
  for (auto& d : d_h) {
    for (auto& v : d) v = static_cast<float>(rng.Uniform(-1, 1));
  }

  // L = sum_t <h_t, d_h[t]>, linear in the hidden outputs.
  auto loss = [&]() {
    std::vector<const float*> inputs;
    for (auto& x : xs) inputs.push_back(x.data());
    auto caches = gru.Forward(inputs);
    float total = 0.0f;
    for (size_t t = 0; t < T; ++t) {
      total += Dot(caches[t].h.data(), d_h[t].data(), H);
    }
    return total;
  };

  ParameterRegistry reg;
  gru.RegisterParams(&reg);
  reg.ZeroGrad();
  std::vector<const float*> inputs;
  for (auto& x : xs) inputs.push_back(x.data());
  auto caches = gru.Forward(inputs);
  std::vector<Vec> d_x;
  gru.Backward(caches, d_h, &d_x);

  for (Parameter* p : reg.params()) {
    for (size_t k = 0; k < p->value.size(); k += p->value.size() / 7 + 1) {
      float* w = p->value.data();
      const float orig = w[k];
      w[k] = orig + kFdEps;
      const float up = loss();
      w[k] = orig - kFdEps;
      const float down = loss();
      w[k] = orig;
      const float fd = (up - down) / (2 * kFdEps);
      EXPECT_NEAR(p->grad.data()[k], fd,
                  kFdTol * std::max(1.0f, std::abs(fd)))
          << p->name << "[" << k << "]";
    }
  }
  // Input gradients at the first, middle, and last steps (each exercises a
  // different amount of through-time recursion).
  for (size_t t : {size_t{0}, size_t{2}, T - 1}) {
    for (size_t k = 0; k < I; ++k) {
      const float orig = xs[t][k];
      xs[t][k] = orig + kFdEps;
      const float up = loss();
      xs[t][k] = orig - kFdEps;
      const float down = loss();
      xs[t][k] = orig;
      const float fd = (up - down) / (2 * kFdEps);
      EXPECT_NEAR(d_x[t][k], fd, kFdTol * std::max(1.0f, std::abs(fd)))
          << "t=" << t << " k=" << k;
    }
  }
}

TEST(GruTest, StreamingMatchesSequenceForward) {
  Rng rng(21);
  const size_t I = 4, H = 6, T = 7;
  Gru gru("s", I, H, &rng);
  std::vector<Vec> xs(T, Vec(I));
  for (auto& x : xs) {
    for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  }
  std::vector<const float*> inputs;
  for (auto& x : xs) inputs.push_back(x.data());
  auto caches = gru.Forward(inputs);

  GruState state(H);
  for (size_t t = 0; t < T; ++t) {
    gru.StepForward(xs[t].data(), &state);
    for (size_t i = 0; i < H; ++i) {
      EXPECT_NEAR(state.h[i], caches[t].h[i], 1e-5f) << "t=" << t;
    }
  }
}

TEST(GruTest, UpdateBiasRetainsState) {
  // The positive update-gate bias keeps h close to h_prev on zero input:
  // feed a strong input once, then zeros — the hidden state should decay
  // slowly rather than collapse.
  Rng rng(3);
  const size_t H = 5;
  Gru gru("b", 2, H, &rng);
  GruState state(H);
  const float strong[2] = {2.0f, -2.0f};
  gru.StepForward(strong, &state);
  const Vec after_input = state.h;
  const float zero[2] = {0.0f, 0.0f};
  gru.StepForward(zero, &state);
  float kept = 0.0f, had = 0.0f;
  for (size_t i = 0; i < H; ++i) {
    kept += state.h[i] * after_input[i];
    had += after_input[i] * after_input[i];
  }
  ASSERT_GT(had, 0.0f);
  EXPECT_GT(kept / had, 0.3f);  // > 30% of the signal survives one step
}

TEST(GruTest, OutputsBounded) {
  // h is a convex blend of tanh outputs and previous h, so |h| <= 1 always.
  Rng rng(17);
  Gru gru("bound", 3, 4, &rng);
  GruState state(4);
  for (int t = 0; t < 100; ++t) {
    float x[3] = {static_cast<float>(rng.Uniform(-10, 10)),
                  static_cast<float>(rng.Uniform(-10, 10)),
                  static_cast<float>(rng.Uniform(-10, 10))};
    gru.StepForward(x, &state);
    for (float h : state.h) {
      EXPECT_LE(std::abs(h), 1.0f + 1e-5f);
    }
  }
}

TEST(GruTest, LearnsASequenceTask) {
  // Trainability end-to-end: regress h -> the previous input's sign via a
  // linear readout; Adam over GRU + head must cut the loss by well over
  // half. Guards against subtly wrong (but finite) BPTT gradients.
  Rng rng(13);
  const size_t I = 2, H = 8, T = 12;
  Gru gru("task", I, H, &rng);
  Linear head("head", H, 1, &rng);
  ParameterRegistry reg;
  gru.RegisterParams(&reg);
  head.RegisterParams(&reg);
  AdamConfig adam_cfg;
  adam_cfg.lr = 0.02f;
  AdamOptimizer adam(&reg, adam_cfg);

  auto run_epoch = [&](bool train) {
    Rng data_rng(99);  // same data every epoch
    double total = 0.0;
    for (int episode = 0; episode < 20; ++episode) {
      std::vector<Vec> xs(T, Vec(I));
      std::vector<float> target(T, 0.0f);
      for (size_t t = 0; t < T; ++t) {
        xs[t][0] = static_cast<float>(data_rng.Uniform(-1, 1));
        xs[t][1] = 1.0f;
        target[t] = t == 0 ? 0.0f : (xs[t - 1][0] > 0 ? 1.0f : -1.0f);
      }
      std::vector<const float*> inputs;
      for (auto& x : xs) inputs.push_back(x.data());
      auto caches = gru.Forward(inputs);
      std::vector<Vec> d_h(T, Vec(H, 0.0f));
      double loss = 0.0;
      std::vector<float> outs(T);
      for (size_t t = 0; t < T; ++t) {
        head.Forward(caches[t].h.data(), &outs[t]);
        const float err = outs[t] - target[t];
        loss += 0.5 * err * err;
      }
      total += loss / T;
      if (!train) continue;
      reg.ZeroGrad();
      for (size_t t = 0; t < T; ++t) {
        const float d_out = (outs[t] - target[t]) / T;
        head.Backward(caches[t].h.data(), &d_out, d_h[t].data());
      }
      gru.Backward(caches, d_h, nullptr);
      reg.ClipGradNorm(5.0f);
      adam.Step();
    }
    return total / 20;
  };

  const double before = run_epoch(false);
  for (int epoch = 0; epoch < 60; ++epoch) run_epoch(true);
  const double after = run_epoch(false);
  EXPECT_LT(after, before * 0.4) << "before " << before << " after " << after;
}

// ---------------------------------------------------------------------------
// RecurrentNet abstraction.

class RnnInterfaceTest : public ::testing::TestWithParam<RnnKind> {};

TEST_P(RnnInterfaceTest, StreamingMatchesSequenceForward) {
  Rng rng(5);
  const size_t I = 3, H = 5, T = 6;
  auto net = MakeRecurrentNet(GetParam(), "iface", I, H, &rng);
  ASSERT_EQ(net->input_dim(), I);
  ASSERT_EQ(net->hidden_dim(), H);

  std::vector<Vec> xs(T, Vec(I));
  for (auto& x : xs) {
    for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  }
  std::vector<const float*> inputs;
  for (auto& x : xs) inputs.push_back(x.data());
  auto cache = net->Forward(inputs);
  ASSERT_EQ(cache->size(), T);

  RnnState state(H);
  for (size_t t = 0; t < T; ++t) {
    net->StepForward(xs[t].data(), &state);
    for (size_t i = 0; i < H; ++i) {
      EXPECT_NEAR(state.h[i], cache->h(t)[i], 1e-5f)
          << RnnKindName(GetParam()) << " t=" << t;
    }
  }
}

TEST_P(RnnInterfaceTest, BackwardProducesFiniteGradients) {
  Rng rng(11);
  const size_t I = 3, H = 4, T = 5;
  auto net = MakeRecurrentNet(GetParam(), "iface", I, H, &rng);
  ParameterRegistry reg;
  net->RegisterParams(&reg);

  std::vector<Vec> xs(T, Vec(I, 0.5f));
  std::vector<const float*> inputs;
  for (auto& x : xs) inputs.push_back(x.data());
  auto cache = net->Forward(inputs);
  std::vector<Vec> d_h(T, Vec(H, 1.0f));
  std::vector<Vec> d_x;
  reg.ZeroGrad();
  net->Backward(*cache, d_h, &d_x);

  ASSERT_EQ(d_x.size(), T);
  float grad_norm = 0.0f;
  for (Parameter* p : reg.params()) {
    for (size_t k = 0; k < p->grad.size(); ++k) {
      ASSERT_TRUE(std::isfinite(p->grad.data()[k])) << p->name;
      grad_norm += p->grad.data()[k] * p->grad.data()[k];
    }
  }
  EXPECT_GT(grad_norm, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RnnInterfaceTest,
                         ::testing::Values(RnnKind::kLstm, RnnKind::kGru),
                         [](const auto& info) {
                           return std::string(RnnKindName(info.param));
                         });

TEST(RnnFactoryTest, ParameterNamesDistinguishArchitectures) {
  Rng rng(1);
  auto lstm = MakeRecurrentNet(RnnKind::kLstm, "rsr", 2, 3, &rng);
  auto gru = MakeRecurrentNet(RnnKind::kGru, "rsr", 2, 3, &rng);
  ParameterRegistry lstm_reg, gru_reg;
  lstm->RegisterParams(&lstm_reg);
  gru->RegisterParams(&gru_reg);
  ASSERT_FALSE(lstm_reg.params().empty());
  ASSERT_FALSE(gru_reg.params().empty());
  EXPECT_NE(lstm_reg.params()[0]->name, gru_reg.params()[0]->name);
  EXPECT_EQ(lstm_reg.params()[0]->name.find("rsr.lstm"), 0u);
  EXPECT_EQ(gru_reg.params()[0]->name.find("rsr.gru"), 0u);
}

TEST(RnnFactoryTest, GruHasFewerWeightsThanLstm) {
  Rng rng(1);
  auto lstm = MakeRecurrentNet(RnnKind::kLstm, "n", 8, 16, &rng);
  auto gru = MakeRecurrentNet(RnnKind::kGru, "n", 8, 16, &rng);
  ParameterRegistry lstm_reg, gru_reg;
  lstm->RegisterParams(&lstm_reg);
  gru->RegisterParams(&gru_reg);
  EXPECT_EQ(gru_reg.NumWeights() * 4, lstm_reg.NumWeights() * 3);
}

}  // namespace
}  // namespace rl4oasd::nn
