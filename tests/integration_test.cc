// End-to-end integration tests: the full RL4OASD pipeline (preprocess ->
// embeddings -> pretrain -> joint train -> online detect) on a synthetic
// city, including detection quality, ablation sanity, online fine-tuning,
// and the raw-GPS -> map-matching -> detection path.
#include <gtest/gtest.h>

#include "baselines/transition_frequency.h"
#include "core/rl4oasd.h"
#include "eval/metrics.h"
#include "mapmatch/hmm_matcher.h"
#include "test_util.h"
#include "traj/gps_sampler.h"

namespace rl4oasd {
namespace {

using ::rl4oasd::testing::SmallDataset;
using ::rl4oasd::testing::SmallGrid;

core::Rl4OasdConfig FastConfig() {
  core::Rl4OasdConfig cfg;
  // Workload-tuned thresholds (see DESIGN.md: the synthetic workload has 3
  // normal routes per pair with popularity ~0.55/0.27/0.18, so the paper's
  // alpha=0.5/delta=0.4 would flag the 2nd/3rd normal routes).
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 4;
  cfg.rsr.embed_dim = 16;
  cfg.rsr.nrf_dim = 16;
  cfg.rsr.hidden_dim = 16;
  cfg.asd.label_dim = 16;
  cfg.embedding.dim = 16;
  cfg.embedding.epochs = 1;
  cfg.embedding.random_walks_per_edge = 1;
  cfg.embedding.walk_length = 10;
  cfg.pretrain_samples = 200;
  cfg.pretrain_epochs = 4;
  cfg.joint_samples = 250;
  cfg.epochs_per_traj = 2;
  return cfg;
}

class Rl4OasdPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new roadnet::RoadNetwork(SmallGrid());
    auto full = SmallDataset(*net_, 8, 0.2, 2024);
    Rng rng(33);
    auto [train, test] = full.Split(full.size() * 7 / 10, &rng);
    train_ = new traj::Dataset(std::move(train));
    test_ = new traj::Dataset(std::move(test));
    model_ = new core::Rl4Oasd(net_, FastConfig());
    model_->Fit(*train_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete test_;
    delete train_;
    delete net_;
    model_ = nullptr;
    test_ = nullptr;
    train_ = nullptr;
    net_ = nullptr;
  }

  static roadnet::RoadNetwork* net_;
  static traj::Dataset* train_;
  static traj::Dataset* test_;
  static core::Rl4Oasd* model_;
};

roadnet::RoadNetwork* Rl4OasdPipelineTest::net_ = nullptr;
traj::Dataset* Rl4OasdPipelineTest::train_ = nullptr;
traj::Dataset* Rl4OasdPipelineTest::test_ = nullptr;
core::Rl4Oasd* Rl4OasdPipelineTest::model_ = nullptr;

TEST_F(Rl4OasdPipelineTest, DetectsWithGoodF1) {
  eval::F1Evaluator ev;
  for (const auto& lt : test_->trajs()) {
    ev.Add(lt.labels, model_->Detect(lt.traj));
  }
  const auto s = ev.Compute();
  // The synthetic task is easy; the trained model should do well.
  EXPECT_GT(s.f1, 0.6) << "precision=" << s.precision
                       << " recall=" << s.recall;
}

TEST_F(Rl4OasdPipelineTest, BeatsTransitionFrequencyBaseline) {
  baselines::TransitionFrequencyDetector baseline;
  baseline.Fit(*train_);
  baseline.Tune(*test_);
  eval::F1Evaluator model_ev, base_ev;
  for (const auto& lt : test_->trajs()) {
    model_ev.Add(lt.labels, model_->Detect(lt.traj));
    base_ev.Add(lt.labels, baseline.Detect(lt.traj));
  }
  // Table IV: full RL4OASD (0.854) vs transition frequency only (0.643).
  EXPECT_GE(model_ev.Compute().f1 + 0.02, base_ev.Compute().f1);
}

TEST_F(Rl4OasdPipelineTest, DetectionIsDeterministic) {
  const auto& t = (*test_)[0].traj;
  EXPECT_EQ(model_->Detect(t), model_->Detect(t));
}

TEST_F(Rl4OasdPipelineTest, NormalTrajectoriesMostlyClean) {
  int clean = 0, total = 0;
  for (const auto& lt : test_->trajs()) {
    if (lt.HasAnomaly()) continue;
    ++total;
    const auto pred = model_->Detect(lt.traj);
    bool any = false;
    for (uint8_t l : pred) any |= l;
    clean += !any;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(clean) / total, 0.6);
}

TEST_F(Rl4OasdPipelineTest, FineTuneIngestsNewData) {
  // Fine-tuning on extra data from the same distribution must not crash and
  // should keep detection quality in the same ballpark.
  core::Rl4Oasd model(net_, FastConfig());
  model.Fit(*train_);
  model.FineTune(*test_, 50);
  eval::F1Evaluator ev;
  for (const auto& lt : test_->trajs()) {
    ev.Add(lt.labels, model.Detect(lt.traj));
  }
  EXPECT_GT(ev.Compute().f1, 0.5);
}

TEST_F(Rl4OasdPipelineTest, RawGpsToDetectionPath) {
  // Full system path: map-matched truth -> noisy GPS -> HMM map matching ->
  // online detection.
  traj::GpsSampler sampler(net_, {});
  mapmatch::HmmMapMatcher matcher(net_);
  int checked = 0;
  for (size_t k = 0; k < test_->size() && checked < 5; ++k) {
    const auto& lt = (*test_)[k];
    const auto raw = sampler.Sample(lt.traj);
    if (raw.points.size() < 5) continue;
    auto matched = matcher.Match(raw);
    if (!matched.ok()) continue;
    const auto labels = model_->Detect(*matched);
    EXPECT_EQ(labels.size(), matched->edges.size());
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(AblationSmokeTest, EveryAblationVariantRuns) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 4, 0.2, 777);
  auto base = FastConfig();
  base.pretrain_samples = 20;
  base.joint_samples = 40;
  base.epochs_per_traj = 1;

  std::vector<std::pair<std::string, core::Rl4OasdConfig>> variants;
  {
    auto c = base;
    c.use_noisy_labels = false;
    variants.push_back({"w/o noisy labels", c});
  }
  {
    auto c = base;
    c.use_pretrained_embeddings = false;
    variants.push_back({"w/o road segment embeddings", c});
  }
  {
    auto c = base;
    c.detector.use_rnel = false;
    variants.push_back({"w/o RNEL", c});
  }
  {
    auto c = base;
    c.detector.use_dl = false;
    variants.push_back({"w/o DL", c});
  }
  {
    auto c = base;
    c.use_local_reward = false;
    variants.push_back({"w/o local reward", c});
  }
  {
    auto c = base;
    c.use_global_reward = false;
    variants.push_back({"w/o global reward", c});
  }
  {
    auto c = base;
    c.use_asdnet = false;
    variants.push_back({"w/o ASDNet", c});
  }
  {
    auto c = base;
    c.transition_frequency_only = true;
    variants.push_back({"only transition frequency", c});
  }
  for (auto& [name, cfg] : variants) {
    core::Rl4Oasd model(&net, cfg);
    model.Fit(ds);
    const auto labels = model.Detect(ds[0].traj);
    EXPECT_EQ(labels.size(), ds[0].traj.edges.size()) << name;
  }
}

TEST(ConceptDriftSmokeTest, FineTunedModelAdaptsToDrift) {
  const auto net = SmallGrid();
  // Dataset with popularity rotation over 2 day-parts.
  traj::GeneratorConfig gcfg;
  gcfg.num_sd_pairs = 5;
  gcfg.min_trajs_per_pair = 60;
  gcfg.max_trajs_per_pair = 90;
  gcfg.anomaly_ratio = 0.15;
  gcfg.min_pair_dist_m = 800;
  gcfg.max_pair_dist_m = 2500;
  gcfg.drift_parts = 2;
  gcfg.seed = 555;
  traj::TrajectoryGenerator gen(&net, gcfg);
  const auto full = gen.Generate();

  // Split by day part.
  traj::Dataset part1, part2;
  for (const auto& lt : full.trajs()) {
    (lt.traj.start_time < 43200.0 ? part1 : part2).Add(lt);
  }
  ASSERT_GT(part1.size(), 0u);
  ASSERT_GT(part2.size(), 0u);

  auto cfg = FastConfig();
  cfg.pretrain_samples = 40;
  cfg.joint_samples = 120;
  cfg.epochs_per_traj = 1;
  // P1: trained on part 1 only.
  core::Rl4Oasd p1(&net, cfg);
  p1.Fit(part1);
  // FT: same, then fine-tuned on part 2.
  core::Rl4Oasd ft(&net, cfg);
  ft.Fit(part1);
  ft.FineTune(part2, 150);

  eval::F1Evaluator ev_p1, ev_ft;
  for (const auto& lt : part2.trajs()) {
    ev_p1.Add(lt.labels, p1.Detect(lt.traj));
    ev_ft.Add(lt.labels, ft.Detect(lt.traj));
  }
  // Fine-tuning on the drifted part must not hurt (paper Figure 6c shows it
  // helps substantially).
  EXPECT_GE(ev_ft.Compute().f1 + 0.05, ev_p1.Compute().f1);
}

}  // namespace
}  // namespace rl4oasd
