// Fuzz-style robustness tests for the binary formats: randomized round
// trips swept over seeds, plus systematic truncation and byte-corruption
// sweeps over every format. The invariant under attack: a damaged file must
// yield a non-OK Status — never a crash, hang, huge allocation, or silently
// wrong data. Because every file carries a whole-payload CRC32, *any*
// corruption must be detected; truncation tests additionally exercise the
// bounds-checked readers by rewriting a valid CRC over the truncated
// payload.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/binary.h"
#include "io/checkpoint.h"
#include "io/dataset_io.h"
#include "io/fleet_snapshot.h"
#include "io/model_io.h"
#include "serve/fleet.h"
#include "test_util.h"

namespace rl4oasd {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  return testing::ReadFileBytes(path);
}

void WriteFile(const std::string& path, const std::string& content) {
  testing::WriteFileBytes(path, content);
}

/// Truncates the payload to `keep` bytes and appends a *valid* CRC over the
/// truncated payload, so the reader proper (not just the CRC check) must
/// reject it.
void TruncateWithValidCrc(const std::string& path, size_t keep) {
  std::string content = ReadFile(path);
  ASSERT_GE(content.size(), 4u);
  content.resize(std::min(keep, content.size() - 4));
  const uint32_t crc = Crc32(content.data(), content.size());
  for (int i = 0; i < 4; ++i) {
    content.push_back(static_cast<char>((crc >> (8 * i)) & 0xFFu));
  }
  WriteFile(path, content);
}

/// Targeted field lies that the parser itself (not the CRC) must reject;
/// the byte surgery lives in testing::PatchPayloadWithValidCrc.
void PatchPayloadWithValidCrc(const std::string& path, size_t offset,
                              const void* bytes, size_t count) {
  ASSERT_TRUE(testing::PatchPayloadWithValidCrc(path, offset, bytes, count));
}

class IoFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rl4oasd_fuzz_" +
            std::to_string(GetParam()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_P(IoFuzzTest, RandomPayloadRoundTrips) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    BinaryWriter w;
    // A random interleaving of primitives, mirrored for verification.
    std::string script;
    std::vector<uint64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> strings;
    const int ops = 1 + static_cast<int>(rng.UniformInt(uint64_t{30}));
    for (int i = 0; i < ops; ++i) {
      switch (rng.UniformInt(uint64_t{3})) {
        case 0: {
          ints.push_back(rng.NextU64());
          w.WriteU64(ints.back());
          script += 'u';
          break;
        }
        case 1: {
          doubles.push_back(rng.Gaussian(0, 1e6));
          w.WriteF64(doubles.back());
          script += 'd';
          break;
        }
        default: {
          std::string s(rng.UniformInt(uint64_t{64}), 'x');
          for (auto& c : s) c = static_cast<char>(rng.UniformInt(32, 126));
          strings.push_back(s);
          w.WriteString(s);
          script += 's';
          break;
        }
      }
    }
    const std::string path = Path("payload.bin");
    ASSERT_TRUE(w.WriteToFile(path).ok());
    auto r = BinaryReader::OpenFile(path);
    ASSERT_TRUE(r.ok());
    size_t iu = 0, id = 0, is = 0;
    for (char op : script) {
      if (op == 'u') {
        uint64_t v;
        ASSERT_TRUE(r->ReadU64(&v).ok());
        EXPECT_EQ(v, ints[iu++]);
      } else if (op == 'd') {
        double v;
        ASSERT_TRUE(r->ReadF64(&v).ok());
        EXPECT_EQ(v, doubles[id++]);
      } else {
        std::string v;
        ASSERT_TRUE(r->ReadString(&v).ok());
        EXPECT_EQ(v, strings[is++]);
      }
    }
    EXPECT_TRUE(r->AtEnd());
  }
}

TEST_P(IoFuzzTest, DatasetSurvivesAnySingleByteCorruption) {
  auto net = testing::SmallGrid();
  auto ds = testing::SmallDataset(net, 2, 0.1, GetParam());
  // Shrink to a handful of trajectories so the byte sweep stays fast.
  std::vector<traj::LabeledTrajectory> few(ds.trajs().begin(),
                                           ds.trajs().begin() + 5);
  const traj::Dataset small(std::move(few));
  const std::string path = Path("ds.bin");
  ASSERT_TRUE(io::SaveDataset(small, path).ok());
  const std::string pristine = ReadFile(path);

  Rng rng(GetParam() ^ 0xF00F);
  for (int trial = 0; trial < 60; ++trial) {
    std::string damaged = pristine;
    const size_t pos = rng.UniformInt(damaged.size());
    damaged[pos] = static_cast<char>(damaged[pos] ^
                                     (1u << rng.UniformInt(uint64_t{8})));
    WriteFile(path, damaged);
    auto loaded = io::LoadDataset(path);
    // The CRC covers every payload byte and itself: any flip is an error.
    EXPECT_FALSE(loaded.ok()) << "byte " << pos;
  }
}

TEST_P(IoFuzzTest, DatasetRejectsEveryTruncationPoint) {
  auto net = testing::SmallGrid();
  auto ds = testing::SmallDataset(net, 2, 0.1, GetParam());
  std::vector<traj::LabeledTrajectory> few(ds.trajs().begin(),
                                           ds.trajs().begin() + 3);
  const traj::Dataset small(std::move(few));
  const std::string path = Path("ds.bin");
  ASSERT_TRUE(io::SaveDataset(small, path).ok());
  const size_t payload = ReadFile(path).size() - 4;

  // Every prefix of the payload (with a freshly valid CRC) must be rejected
  // by the parser itself — truncation can land mid-field anywhere.
  Rng rng(GetParam() ^ 0xABAB);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t keep = rng.UniformInt(payload);  // strictly shorter
    ASSERT_TRUE(io::SaveDataset(small, path).ok());
    TruncateWithValidCrc(path, keep);
    auto loaded = io::LoadDataset(path);
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " of " << payload;
  }
}

TEST_P(IoFuzzTest, RoadNetworkRejectsEveryTruncationPoint) {
  roadnet::GridCityConfig cfg;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.seed = GetParam();
  const auto net = roadnet::BuildGridCity(cfg);
  const std::string path = Path("net.bin");
  ASSERT_TRUE(io::SaveRoadNetwork(net, path).ok());
  const size_t payload = ReadFile(path).size() - 4;

  Rng rng(GetParam() ^ 0x1221);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t keep = rng.UniformInt(payload);
    ASSERT_TRUE(io::SaveRoadNetwork(net, path).ok());
    TruncateWithValidCrc(path, keep);
    EXPECT_FALSE(io::LoadRoadNetwork(path).ok()) << "kept " << keep;
  }
}

TEST_P(IoFuzzTest, CheckpointRejectsEveryTruncationPoint) {
  Rng rng(GetParam());
  nn::Parameter a("layer/w", 6, 8), b("layer/b", 1, 8);
  a.XavierInit(&rng);
  b.XavierInit(&rng);
  nn::ParameterRegistry reg;
  reg.Register(&a);
  reg.Register(&b);
  const std::string path = Path("ckpt.bin");
  ASSERT_TRUE(io::SaveRegistry(reg, path).ok());
  const size_t payload = ReadFile(path).size() - 4;

  for (int trial = 0; trial < 40; ++trial) {
    const size_t keep = rng.UniformInt(payload);
    ASSERT_TRUE(io::SaveRegistry(reg, path).ok());
    TruncateWithValidCrc(path, keep);
    nn::Parameter a2("layer/w", 6, 8), b2("layer/b", 1, 8);
    nn::ParameterRegistry reg2;
    reg2.Register(&a2);
    reg2.Register(&b2);
    EXPECT_FALSE(io::LoadRegistry(path, &reg2).ok()) << "kept " << keep;
  }
}

TEST_P(IoFuzzTest, GarbageFilesNeverParse) {
  Rng rng(GetParam() ^ 0x6666);
  auto net = testing::SmallGrid();
  for (int trial = 0; trial < 25; ++trial) {
    // Random bytes with a valid CRC footer: magic/structure checks must
    // reject them (a 1-in-4-billion magic collision aside, the sizes and
    // counts that follow cannot all validate).
    std::string garbage(1 + rng.UniformInt(uint64_t{400}), '\0');
    for (auto& c : garbage) {
      c = static_cast<char>(rng.UniformInt(uint64_t{256}));
    }
    const uint32_t crc = Crc32(garbage.data(), garbage.size());
    for (int i = 0; i < 4; ++i) {
      garbage.push_back(static_cast<char>((crc >> (8 * i)) & 0xFFu));
    }
    const std::string path = Path("garbage.bin");
    WriteFile(path, garbage);
    EXPECT_FALSE(io::LoadDataset(path).ok());
    EXPECT_FALSE(io::LoadRoadNetwork(path).ok());
    EXPECT_FALSE(io::LoadMatrix(path).ok());
    EXPECT_FALSE(io::LoadModel(&net, path).ok());
    EXPECT_FALSE(io::DescribeModel(path).ok());
    EXPECT_FALSE(io::DescribeFleetSnapshot(path).ok());
  }
}

// ---------------------------------------------------------------------------
// Fleet snapshot format (serve::FleetMonitor::Snapshot/Restore +
// io::DescribeFleetSnapshot). The attack surface is larger than the other
// formats because restore reconstructs live sessions: every count, edge id,
// label, run bound, and hidden-state length in a trip record is hostile
// input and must fail with a clean Status, never UB.

/// A tiny live fleet over an *untrained* model (snapshot robustness does
/// not depend on detection quality) with a snapshot written to disk.
class FleetSnapshotFuzz : public IoFuzzTest {
 protected:
  void BuildSnapshot(const std::string& meta = "fuzz") {
    net_ = std::make_unique<roadnet::RoadNetwork>(testing::SmallGrid());
    core::Rl4OasdConfig cfg;
    cfg.rsr.embed_dim = 16;
    cfg.rsr.nrf_dim = 8;
    cfg.rsr.hidden_dim = 16;
    cfg.asd.label_dim = 8;
    cfg.seed = GetParam();
    model_ = std::make_unique<core::Rl4Oasd>(net_.get(), cfg);
    monitor_ = std::make_unique<serve::FleetMonitor>(
        model_.get(), serve::FleetConfig{}, nullptr);
    const auto ds = testing::SmallDataset(*net_, 2, 0.1, GetParam());
    int started = 0;
    for (const auto& lt : ds.trajs()) {
      const auto& t = lt.traj;
      if (t.edges.size() < 4) continue;
      const int64_t vid = started;
      ASSERT_TRUE(monitor_->StartTrip(vid, t.sd(), t.start_time).ok());
      for (size_t i = 0; i + 1 < t.edges.size(); ++i) {
        ASSERT_TRUE(monitor_->Feed(vid, t.edges[i], t.start_time).ok());
      }
      if (++started == 4) break;
    }
    ASSERT_EQ(started, 4);
    BinaryWriter w;
    ASSERT_TRUE(monitor_->Snapshot(&w, meta).ok());
    path_ = Path("fleet.snap");
    ASSERT_TRUE(w.WriteToFile(path_).ok());
  }

  /// Restores `path_` into a fresh monitor over the same model.
  Status TryRestore() {
    serve::FleetMonitor fresh(model_.get(), serve::FleetConfig{}, nullptr);
    auto r = BinaryReader::OpenFile(path_);
    if (!r.ok()) return r.status();
    return fresh.Restore(&*r);
  }

  std::unique_ptr<roadnet::RoadNetwork> net_;
  std::unique_ptr<core::Rl4Oasd> model_;
  std::unique_ptr<serve::FleetMonitor> monitor_;
  std::string path_;
};

TEST_P(FleetSnapshotFuzz, PristineSnapshotRoundTrips) {
  BuildSnapshot();
  EXPECT_TRUE(io::DescribeFleetSnapshot(path_).ok());
  EXPECT_TRUE(TryRestore().ok());
}

TEST_P(FleetSnapshotFuzz, SurvivesAnySingleByteCorruption) {
  BuildSnapshot();
  const std::string pristine = ReadFile(path_);
  Rng rng(GetParam() ^ 0xBEEF);
  for (int trial = 0; trial < 40; ++trial) {
    std::string damaged = pristine;
    const size_t pos = rng.UniformInt(damaged.size());
    damaged[pos] = static_cast<char>(damaged[pos] ^
                                     (1u << rng.UniformInt(uint64_t{8})));
    WriteFile(path_, damaged);
    // The CRC covers every payload byte and itself: any flip is an error.
    EXPECT_FALSE(io::DescribeFleetSnapshot(path_).ok()) << "byte " << pos;
    EXPECT_FALSE(TryRestore().ok()) << "byte " << pos;
  }
}

TEST_P(FleetSnapshotFuzz, RejectsEveryTruncationPoint) {
  BuildSnapshot();
  const std::string pristine = ReadFile(path_);
  const size_t payload = pristine.size() - 4;
  Rng rng(GetParam() ^ 0x51AB);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t keep = rng.UniformInt(payload);  // strictly shorter
    WriteFile(path_, pristine);
    TruncateWithValidCrc(path_, keep);
    EXPECT_FALSE(io::DescribeFleetSnapshot(path_).ok()) << "kept " << keep;
    EXPECT_FALSE(TryRestore().ok()) << "kept " << keep;
  }
}

TEST_P(FleetSnapshotFuzz, WrongMagicRejected) {
  BuildSnapshot();
  const char bad[4] = {'R', 'L', 'M', 'B'};  // a model bundle's magic
  PatchPayloadWithValidCrc(path_, 0, bad, 4);
  const auto desc = io::DescribeFleetSnapshot(path_);
  ASSERT_FALSE(desc.ok());
  EXPECT_NE(desc.status().ToString().find("magic"), std::string::npos);
  EXPECT_FALSE(TryRestore().ok());
  // And the cross-format confusion is caught on the other side too: a
  // snapshot wearing a bundle magic is still not a model bundle.
  EXPECT_FALSE(io::DescribeModel(path_).ok());
}

TEST_P(FleetSnapshotFuzz, FutureVersionRejectedWithDescriptiveError) {
  BuildSnapshot();
  const uint32_t future = io::kFleetSnapshotVersion + 1;
  PatchPayloadWithValidCrc(path_, 4, &future, 4);  // little-endian host in CI
  const auto desc = io::DescribeFleetSnapshot(path_);
  ASSERT_FALSE(desc.ok());
  EXPECT_NE(desc.status().ToString().find("version"), std::string::npos)
      << desc.status().ToString();
  const Status st = TryRestore();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("version"), std::string::npos);
}

TEST_P(FleetSnapshotFuzz, FingerprintMismatchRejectedOnRestoreOnly) {
  BuildSnapshot();
  const std::string pristine = ReadFile(path_);
  uint8_t flipped = static_cast<uint8_t>(pristine[8]) ^ 0xFF;
  PatchPayloadWithValidCrc(path_, 8, &flipped, 1);
  // Describe is model-free metadata and still parses; restore must refuse
  // to marry live hidden states to a different model.
  EXPECT_TRUE(io::DescribeFleetSnapshot(path_).ok());
  const Status st = TryRestore();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.ToString().find("fingerprint"), std::string::npos);
}

TEST_P(FleetSnapshotFuzz, TripCountLieRejected) {
  BuildSnapshot("fuzz");  // meta length pins the trip-count offset below
  // Layout: magic(4) version(4) fingerprint(8) meta(4+4) stats(136) -> 160.
  const uint64_t lie = ~uint64_t{0} / 2;
  PatchPayloadWithValidCrc(path_, 160, &lie, 8);
  EXPECT_FALSE(io::DescribeFleetSnapshot(path_).ok());
  EXPECT_FALSE(TryRestore().ok());
}

TEST_P(FleetSnapshotFuzz, NegativeCounterRejectedOnRestore) {
  BuildSnapshot("fuzz");
  // trips_finished sits at payload offset 24 + 8 (second stats i64).
  const int64_t lie = -5;
  PatchPayloadWithValidCrc(path_, 32, &lie, 8);
  const Status st = TryRestore();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetSnapshotFuzz,
                         ::testing::Values(uint64_t{1}, uint64_t{37},
                                           uint64_t{911}));

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzzTest,
                         ::testing::Values(uint64_t{1}, uint64_t{37},
                                           uint64_t{911}));

}  // namespace
}  // namespace rl4oasd
