// Tests for the io module: binary encoding primitives, CRC32 integrity,
// tensor checkpoints, dataset / road-network round trips, and whole-model
// bundles. Failure injection (truncation, bit flips, wrong magic, shape
// drift) verifies that corrupt inputs are rejected with a clean Status
// instead of undefined behaviour.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/binary.h"
#include "core/rl4oasd.h"
#include "io/checkpoint.h"
#include "io/dataset_io.h"
#include "io/model_io.h"
#include "test_util.h"

namespace rl4oasd {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rl4oasd_io_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Flips one byte in the middle of a file (CRC must catch it).
  static void CorruptByte(const std::string& path, size_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<size_t>(f.tellg());
    ASSERT_LT(offset, size);
    f.seekg(offset);
    char c;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5A);
    f.seekp(offset);
    f.write(&c, 1);
  }

  static void Truncate(const std::string& path, size_t new_size) {
    fs::resize_file(path, new_size);
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// Binary primitives.

TEST_F(IoTest, PrimitiveRoundTrip) {
  BinaryWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEFu);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI32(-42);
  w.WriteI64(-9e15);
  w.WriteF32(3.25f);
  w.WriteF64(-2.5e-300);
  w.WriteString("hello, 道路");
  w.WriteI32Vector({1, -2, 3});
  w.WriteF32Vector({0.5f, -0.25f});

  BinaryReader r(w.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  float f32;
  double f64;
  std::string s;
  std::vector<int32_t> vi;
  std::vector<float> vf;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI32(&i32).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadF32(&f32).ok());
  ASSERT_TRUE(r.ReadF64(&f64).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadI32Vector(&vi).ok());
  ASSERT_TRUE(r.ReadF32Vector(&vf).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, static_cast<int64_t>(-9e15));
  EXPECT_EQ(f32, 3.25f);
  EXPECT_EQ(f64, -2.5e-300);
  EXPECT_EQ(s, "hello, 道路");
  EXPECT_EQ(vi, (std::vector<int32_t>{1, -2, 3}));
  EXPECT_EQ(vf, (std::vector<float>{0.5f, -0.25f}));
  EXPECT_TRUE(r.AtEnd());
}

TEST_F(IoTest, ReadPastEndFails) {
  BinaryWriter w;
  w.WriteU32(7);
  BinaryReader r(w.buffer());
  uint64_t v;
  EXPECT_EQ(r.ReadU64(&v).code(), StatusCode::kOutOfRange);
}

TEST_F(IoTest, StringLengthBeyondPayloadFails) {
  BinaryWriter w;
  w.WriteU32(1000);  // claims a 1000-byte string
  w.WriteBytes("abc", 3);
  BinaryReader r(w.buffer());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kOutOfRange);
}

TEST_F(IoTest, VectorLengthBeyondPayloadFails) {
  BinaryWriter w;
  w.WriteU32(0xFFFFFFFFu);  // absurd element count
  BinaryReader r(w.buffer());
  std::vector<int32_t> v;
  EXPECT_EQ(r.ReadI32Vector(&v).code(), StatusCode::kOutOfRange);
}

TEST_F(IoTest, Crc32KnownVector) {
  // Standard check value for "123456789" under CRC-32/IEEE.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST_F(IoTest, FileRoundTripAndCrcRejection) {
  BinaryWriter w;
  for (int i = 0; i < 100; ++i) w.WriteI32(i * i);
  const std::string path = Path("blob.bin");
  ASSERT_TRUE(w.WriteToFile(path).ok());

  auto ok = BinaryReader::OpenFile(path);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  int32_t v;
  ASSERT_TRUE(ok->ReadI32(&v).ok());
  EXPECT_EQ(v, 0);

  CorruptByte(path, 17);
  auto bad = BinaryReader::OpenFile(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIOError);
}

TEST_F(IoTest, OpenMissingFileFails) {
  auto r = BinaryReader::OpenFile(Path("does_not_exist.bin"));
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(IoTest, TruncatedFileFailsCrc) {
  BinaryWriter w;
  w.WriteString("payload payload payload");
  const std::string path = Path("trunc.bin");
  ASSERT_TRUE(w.WriteToFile(path).ok());
  Truncate(path, 10);
  EXPECT_FALSE(BinaryReader::OpenFile(path).ok());
}

// ---------------------------------------------------------------------------
// Tensor checkpoints.

TEST_F(IoTest, RegistryRoundTrip) {
  Rng rng(3);
  nn::Parameter a("layer/w", 4, 6), b("layer/b", 1, 6);
  a.XavierInit(&rng);
  b.UniformInit(&rng, 0.1f);
  nn::ParameterRegistry reg;
  reg.Register(&a);
  reg.Register(&b);

  const std::string path = Path("ckpt.bin");
  ASSERT_TRUE(io::SaveRegistry(reg, path).ok());

  nn::Parameter a2("layer/w", 4, 6), b2("layer/b", 1, 6);
  nn::ParameterRegistry reg2;
  reg2.Register(&a2);
  reg2.Register(&b2);
  ASSERT_TRUE(io::LoadRegistry(path, &reg2).ok());
  for (size_t i = 0; i < a.value.size(); ++i) {
    EXPECT_EQ(a.value.data()[i], a2.value.data()[i]);
  }
  for (size_t i = 0; i < b.value.size(); ++i) {
    EXPECT_EQ(b.value.data()[i], b2.value.data()[i]);
  }
}

TEST_F(IoTest, RegistryShapeMismatchRejected) {
  Rng rng(3);
  nn::Parameter a("w", 4, 6);
  a.XavierInit(&rng);
  nn::ParameterRegistry reg;
  reg.Register(&a);
  const std::string path = Path("ckpt.bin");
  ASSERT_TRUE(io::SaveRegistry(reg, path).ok());

  nn::Parameter wrong("w", 6, 4);  // transposed shape
  nn::ParameterRegistry reg2;
  reg2.Register(&wrong);
  auto st = io::LoadRegistry(path, &reg2);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shape mismatch"), std::string::npos);
}

TEST_F(IoTest, RegistryNameMismatchRejected) {
  Rng rng(3);
  nn::Parameter a("w", 2, 2);
  a.XavierInit(&rng);
  nn::ParameterRegistry reg;
  reg.Register(&a);
  const std::string path = Path("ckpt.bin");
  ASSERT_TRUE(io::SaveRegistry(reg, path).ok());

  nn::Parameter renamed("w_renamed", 2, 2);
  nn::ParameterRegistry reg2;
  reg2.Register(&renamed);
  EXPECT_FALSE(io::LoadRegistry(path, &reg2).ok());
}

TEST_F(IoTest, RegistryCountMismatchRejected) {
  Rng rng(3);
  nn::Parameter a("w", 2, 2);
  a.XavierInit(&rng);
  nn::ParameterRegistry reg;
  reg.Register(&a);
  const std::string path = Path("ckpt.bin");
  ASSERT_TRUE(io::SaveRegistry(reg, path).ok());

  nn::Parameter a2("w", 2, 2), extra("extra", 1, 1);
  nn::ParameterRegistry reg2;
  reg2.Register(&a2);
  reg2.Register(&extra);
  EXPECT_FALSE(io::LoadRegistry(path, &reg2).ok());
}

TEST_F(IoTest, MatrixRoundTrip) {
  nn::Matrix m(3, 5);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(i) * 0.25f - 1.0f;
  }
  const std::string path = Path("matrix.bin");
  ASSERT_TRUE(io::SaveMatrix(m, path).ok());
  auto loaded = io::LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows(), 3u);
  EXPECT_EQ(loaded->cols(), 5u);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(loaded->data()[i], m.data()[i]);
  }
}

TEST_F(IoTest, WrongMagicRejected) {
  BinaryWriter w;
  w.WriteString("this is not a checkpoint");
  const std::string path = Path("junk.bin");
  ASSERT_TRUE(w.WriteToFile(path).ok());
  nn::ParameterRegistry reg;
  auto st = io::LoadRegistry(path, &reg);
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(io::LoadMatrix(path).ok());
}

// ---------------------------------------------------------------------------
// Dataset and road-network files.

TEST_F(IoTest, DatasetBinaryRoundTrip) {
  auto net = testing::SmallGrid();
  auto ds = testing::SmallDataset(net, 4);
  ASSERT_GT(ds.size(), 0u);

  const std::string path = Path("dataset.bin");
  ASSERT_TRUE(io::SaveDataset(ds, path).ok());
  auto loaded = io::LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ((*loaded)[i].traj.id, ds[i].traj.id);
    EXPECT_EQ((*loaded)[i].traj.start_time, ds[i].traj.start_time);
    EXPECT_EQ((*loaded)[i].traj.edges, ds[i].traj.edges);
    EXPECT_EQ((*loaded)[i].labels, ds[i].labels);
  }
  EXPECT_EQ(loaded->NumSdPairs(), ds.NumSdPairs());
}

TEST_F(IoTest, DatasetLabelLengthMismatchRejectedOnSave) {
  traj::LabeledTrajectory lt;
  lt.traj.id = 1;
  lt.traj.edges = {1, 2, 3};
  lt.labels = {0, 1};  // too short
  traj::Dataset ds;
  ds.Add(std::move(lt));
  EXPECT_EQ(io::SaveDataset(ds, Path("bad.bin")).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IoTest, EmptyDatasetRoundTrip) {
  traj::Dataset ds;
  const std::string path = Path("empty.bin");
  ASSERT_TRUE(io::SaveDataset(ds, path).ok());
  auto loaded = io::LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST_F(IoTest, RoadNetworkBinaryRoundTrip) {
  auto net = testing::SmallGrid();
  const std::string path = Path("net.bin");
  ASSERT_TRUE(io::SaveRoadNetwork(net, path).ok());
  auto loaded = io::LoadRoadNetwork(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->NumVertices(), net.NumVertices());
  ASSERT_EQ(loaded->NumEdges(), net.NumEdges());
  for (size_t e = 0; e < net.NumEdges(); ++e) {
    const auto id = static_cast<roadnet::EdgeId>(e);
    EXPECT_EQ(loaded->edge(id).from, net.edge(id).from);
    EXPECT_EQ(loaded->edge(id).to, net.edge(id).to);
    EXPECT_EQ(loaded->edge(id).length_m, net.edge(id).length_m);
    EXPECT_EQ(loaded->edge(id).road_class, net.edge(id).road_class);
    EXPECT_EQ(loaded->EdgeOutDegree(id), net.EdgeOutDegree(id));
    EXPECT_EQ(loaded->EdgeInDegree(id), net.EdgeInDegree(id));
  }
}

TEST_F(IoTest, CorruptDatasetRejected) {
  auto net = testing::SmallGrid();
  auto ds = testing::SmallDataset(net, 2);
  const std::string path = Path("dataset.bin");
  ASSERT_TRUE(io::SaveDataset(ds, path).ok());
  CorruptByte(path, 40);
  EXPECT_FALSE(io::LoadDataset(path).ok());
}

// ---------------------------------------------------------------------------
// Whole-model bundles.

class ModelBundleTest : public IoTest {
 protected:
  /// A tiny trained model (fast settings) shared by the bundle tests.
  static core::Rl4OasdConfig TinyConfig() {
    core::Rl4OasdConfig cfg;
    cfg.rsr.embed_dim = 16;
    cfg.rsr.nrf_dim = 8;
    cfg.rsr.hidden_dim = 16;
    cfg.asd.label_dim = 8;
    cfg.embedding.dim = 16;
    cfg.embedding.epochs = 1;
    cfg.pretrain_samples = 40;
    cfg.pretrain_epochs = 1;
    cfg.joint_samples = 40;
    cfg.epochs_per_traj = 1;
    return cfg;
  }
};

TEST_F(ModelBundleTest, ConfigKvRoundTrip) {
  core::Rl4OasdConfig cfg = TinyConfig();
  cfg.preprocess.alpha = 0.31;
  cfg.detector.delay_d = 5;
  cfg.use_local_reward = false;
  cfg.seed = 1234;

  BinaryWriter w;
  io::WriteConfigKv(cfg, &w);
  BinaryReader r(w.buffer());
  core::Rl4OasdConfig back;  // defaults everywhere
  ASSERT_TRUE(io::ReadConfigKv(&r, &back).ok());
  EXPECT_EQ(back.preprocess.alpha, 0.31);
  EXPECT_EQ(back.detector.delay_d, 5);
  EXPECT_FALSE(back.use_local_reward);
  EXPECT_EQ(back.seed, 1234u);
  EXPECT_EQ(back.rsr.hidden_dim, 16u);
}

TEST_F(ModelBundleTest, SaveLoadPreservesDetection) {
  auto net = testing::SmallGrid();
  auto ds = testing::SmallDataset(net, 5, 0.12);
  core::Rl4Oasd model(&net, TinyConfig());
  model.Fit(ds);

  const std::string path = Path("model.rlmb");
  ASSERT_TRUE(io::SaveModel(model, path).ok());

  auto loaded = io::LoadModel(&net, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The loaded model must reproduce the original's labels exactly on every
  // test trajectory (both detectors are deterministic argmax).
  for (size_t i = 0; i < std::min<size_t>(ds.size(), 60); ++i) {
    EXPECT_EQ((*loaded)->Detect(ds[i].traj), model.Detect(ds[i].traj))
        << "trajectory " << i;
  }
}

TEST_F(ModelBundleTest, LoadAgainstWrongNetworkRejected) {
  auto net = testing::SmallGrid();
  auto ds = testing::SmallDataset(net, 3);
  core::Rl4Oasd model(&net, TinyConfig());
  model.Fit(ds);
  const std::string path = Path("model.rlmb");
  ASSERT_TRUE(io::SaveModel(model, path).ok());

  // A grid with different dimensions has a different edge count.
  roadnet::GridCityConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.removal_prob = 0.0;
  auto other = roadnet::BuildGridCity(cfg);
  auto loaded = io::LoadModel(&other, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ModelBundleTest, CorruptBundleRejected) {
  auto net = testing::SmallGrid();
  auto ds = testing::SmallDataset(net, 3);
  core::Rl4Oasd model(&net, TinyConfig());
  model.Fit(ds);
  const std::string path = Path("model.rlmb");
  ASSERT_TRUE(io::SaveModel(model, path).ok());
  CorruptByte(path, 100);
  EXPECT_FALSE(io::LoadModel(&net, path).ok());
}

// ---------------------------------------------------------------------------
// Version skew (see tests/README.md, "Version-skew contracts"): a bundle
// stamped by a future build must load to a descriptive error, never a
// crash; a bundle missing config keys must restore compiled-in defaults.

TEST_F(ModelBundleTest, FutureBundleVersionRejectedWithDescriptiveError) {
  auto net = testing::SmallGrid();
  core::Rl4Oasd model(&net, TinyConfig());  // untrained is enough
  const std::string path = Path("model.rlmb");
  ASSERT_TRUE(io::SaveModel(model, path).ok());

  // Stamp the version field (payload offset 4, little-endian) with
  // version+1 and refresh the CRC, so the *parser* rejects it.
  const uint32_t future = io::kModelBundleVersion + 1;
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<unsigned char>((future >> (8 * i)) & 0xFFu);
  }
  ASSERT_TRUE(testing::PatchPayloadWithValidCrc(path, 4, bytes, 4));

  const auto loaded = io::LoadModel(&net, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("version"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(ModelBundleTest, AbsentConfigKeysRestoreDefaults) {
  // Key-value level: a bundle written before a config field existed simply
  // lacks its key — reading must keep the compiled-in default.
  BinaryWriter w;
  w.WriteU32(2);
  w.WriteString("preprocess.alpha");
  w.WriteF64(0.42);
  w.WriteString("a.key.from.the.future");  // unknown keys are skipped
  w.WriteF64(7.0);
  BinaryReader r(w.buffer());
  core::Rl4OasdConfig cfg;
  const core::Rl4OasdConfig defaults;
  ASSERT_TRUE(io::ReadConfigKv(&r, &cfg).ok());
  EXPECT_EQ(cfg.preprocess.alpha, 0.42);
  EXPECT_EQ(cfg.detector.delay_d, defaults.detector.delay_d);
  EXPECT_EQ(cfg.rsr.hidden_dim, defaults.rsr.hidden_dim);
  EXPECT_EQ(cfg.noisy_anchor_prob, defaults.noisy_anchor_prob);
}

TEST_F(ModelBundleTest, BundleWithAbsentConfigKeysStillLoads) {
  // Whole-bundle level: strip non-architectural keys out of a real bundle's
  // kv section and splice the rest back together — the bundle must load
  // and the stripped fields must come back as defaults.
  auto net = testing::SmallGrid();
  core::Rl4OasdConfig cfg = TinyConfig();
  cfg.detector.delay_d = 6;         // non-default, about to be stripped
  cfg.joint_samples = 9999;         // likewise
  core::Rl4Oasd model(&net, cfg);
  const std::string path = Path("model.rlmb");
  ASSERT_TRUE(io::SaveModel(model, path).ok());

  auto reader = BinaryReader::OpenFile(path);
  ASSERT_TRUE(reader.ok());
  char magic[4];
  uint32_t version, kv_count;
  ASSERT_TRUE(reader->ReadBytes(magic, 4).ok());
  ASSERT_TRUE(reader->ReadU32(&version).ok());
  ASSERT_TRUE(reader->ReadU32(&kv_count).ok());
  BinaryWriter kv;  // the filtered kv entries (count prepended later)
  uint32_t kept = 0;
  for (uint32_t i = 0; i < kv_count; ++i) {
    std::string key;
    double value;
    ASSERT_TRUE(reader->ReadString(&key).ok());
    ASSERT_TRUE(reader->ReadF64(&value).ok());
    if (key == "detector.delay_d" || key == "train.joint_samples") continue;
    kv.WriteString(key);
    kv.WriteF64(value);
    ++kept;
  }
  ASSERT_EQ(kept, kv_count - 2);
  BinaryWriter spliced;
  spliced.WriteBytes(magic, 4);
  spliced.WriteU32(version);
  spliced.WriteU32(kept);
  spliced.WriteBytes(kv.buffer().data(), kv.buffer().size());
  // Everything after the kv section is untouched payload.
  std::string rest(reader->remaining(), '\0');
  ASSERT_TRUE(reader->ReadBytes(rest.data(), rest.size()).ok());
  spliced.WriteBytes(rest.data(), rest.size());
  ASSERT_TRUE(spliced.WriteToFile(path).ok());

  const auto loaded = io::LoadModel(&net, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const core::Rl4OasdConfig defaults;
  EXPECT_EQ((*loaded)->config().detector.delay_d,
            defaults.detector.delay_d);
  EXPECT_EQ((*loaded)->config().joint_samples, defaults.joint_samples);
  // The kept architecture keys still apply.
  EXPECT_EQ((*loaded)->config().rsr.hidden_dim, 16u);
}

TEST_F(ModelBundleTest, PreprocessorStateSurvivesRoundTrip) {
  auto ex = testing::MakeFigure1Example();
  core::Rl4OasdConfig cfg = TinyConfig();
  cfg.joint_samples = 10;
  core::Rl4Oasd model(&ex.net, cfg);
  model.Fit(ex.dataset);

  const std::string path = Path("fig1.rlmb");
  ASSERT_TRUE(io::SaveModel(model, path).ok());
  auto loaded = io::LoadModel(&ex.net, path);
  ASSERT_TRUE(loaded.ok());

  // Transition fractions from the worked example must be identical.
  traj::MapMatchedTrajectory t3;
  t3.edges = ex.t3;
  t3.start_time = 9 * 3600.0;
  EXPECT_EQ((*loaded)->preprocessor().TransitionFractions(t3),
            model.preprocessor().TransitionFractions(t3));
  EXPECT_EQ((*loaded)->preprocessor().NumGroups(),
            model.preprocessor().NumGroups());
}

TEST_F(ModelBundleTest, DescribeModelMatchesTrainedModel) {
  auto net = testing::SmallGrid();
  auto ds = testing::SmallDataset(net, 3);
  core::Rl4Oasd model(&net, TinyConfig());
  model.Fit(ds);
  const std::string path = Path("model.rlmb");
  ASSERT_TRUE(io::SaveModel(model, path).ok());

  auto desc = io::DescribeModel(path);
  ASSERT_TRUE(desc.ok()) << desc.status().ToString();
  EXPECT_EQ(desc->version, io::kModelBundleVersion);
  EXPECT_EQ(desc->num_trajs, static_cast<int64_t>(ds.size()));
  EXPECT_GT(desc->num_groups, 0u);
  // Tensor inventory: RSRNet has tcf + nrf embeddings, 3 LSTM tensors, and
  // a 2-tensor head; ASDNet a label embedding and a 2-tensor policy.
  EXPECT_EQ(desc->rsr_tensors.size(), 7u);
  EXPECT_EQ(desc->asd_tensors.size(), 3u);
  size_t rsr_weights = 0;
  for (const auto& t : desc->rsr_tensors) rsr_weights += t.rows * t.cols;
  EXPECT_EQ(rsr_weights, model.mutable_rsrnet()->registry()->NumWeights());
  size_t total = rsr_weights;
  for (const auto& t : desc->asd_tensors) total += t.rows * t.cols;
  EXPECT_EQ(desc->total_weights, total);
  // Config keys round-trip (spot check a couple).
  bool saw_alpha = false;
  for (const auto& [key, value] : desc->config) {
    if (key == "preprocess.alpha") {
      saw_alpha = true;
      EXPECT_EQ(value, model.config().preprocess.alpha);
    }
  }
  EXPECT_TRUE(saw_alpha);
}

TEST_F(ModelBundleTest, DescribeModelRejectsNonBundles) {
  BinaryWriter w;
  w.WriteString("junk");
  const std::string path = Path("junk.bin");
  ASSERT_TRUE(w.WriteToFile(path).ok());
  EXPECT_FALSE(io::DescribeModel(path).ok());
  EXPECT_FALSE(io::DescribeModel(Path("missing.rlmb")).ok());
}

}  // namespace
}  // namespace rl4oasd
