// The map-matching exactness contracts, enforced over randomized cities,
// noise levels, gap patterns, and matcher configs:
//   1. Fast kernel == reference kernel: Match() (reusable Dijkstra, early
//      termination, dominance pruning) returns byte-identical results to
//      MatchReference() (the seed-era per-(layer, candidate) fresh-map
//      kernel).
//   2. Streaming == batch: feeding fixes one at a time and calling Finish()
//      is bit-identical to batch Match() — including mid-stream decodes
//      against the matching prefix trajectory.
//   3. MatchBatch is thread-count invariant: any worker count produces the
//      same per-index results as sequential Match().
// This file carries the `concurrency` ctest label so TSAN exercises the
// MatchBatch sharding.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "mapmatch/hmm_matcher.h"
#include "mapmatch/streaming_matcher.h"
#include "test_util.h"
#include "traj/gps_sampler.h"

namespace rl4oasd::mapmatch {
namespace {

using ::rl4oasd::testing::SmallDataset;
using ::rl4oasd::testing::SmallGrid;

struct EquivCase {
  uint64_t seed;
  double noise_m;
  double dropout;
  double radius_m;
  size_t max_cands;
};

std::ostream& operator<<(std::ostream& os, const EquivCase& c) {
  return os << "seed" << c.seed << "_noise" << c.noise_m << "_drop"
            << c.dropout << "_r" << c.radius_m << "_k" << c.max_cands;
}

/// Raw trajectories sampled under the case's noise and dropout pattern.
std::vector<traj::RawTrajectory> SampleCase(const roadnet::RoadNetwork& net,
                                            const EquivCase& c,
                                            size_t limit) {
  const auto ds = SmallDataset(net, 2, 0.1, c.seed + 1);
  traj::GpsSamplerConfig gps;
  gps.noise_sigma_m = c.noise_m;
  gps.dropout_prob = c.dropout;
  traj::GpsSampler sampler(&net, gps, c.seed + 2);
  std::vector<traj::RawTrajectory> raws;
  for (size_t i = 0; i < std::min(ds.size(), limit); ++i) {
    auto raw = sampler.Sample(ds[i].traj);
    if (!raw.points.empty()) raws.push_back(std::move(raw));
  }
  return raws;
}

HmmMapMatcher MakeMatcher(const roadnet::RoadNetwork& net,
                          const EquivCase& c) {
  HmmConfig cfg;
  cfg.candidate_radius_m = c.radius_m;
  cfg.max_candidates = c.max_cands;
  cfg.gps_sigma_m = std::max(10.0, c.noise_m);
  return HmmMapMatcher(&net, cfg);
}

void ExpectSameResult(const Result<traj::MapMatchedTrajectory>& a,
                      const Result<traj::MapMatchedTrajectory>& b) {
  ASSERT_EQ(a.ok(), b.ok())
      << a.status().ToString() << " vs " << b.status().ToString();
  if (!a.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code());
    return;
  }
  EXPECT_EQ(a->id, b->id);
  EXPECT_EQ(a->edges, b->edges);
  EXPECT_EQ(a->start_time, b->start_time);  // exact: bit-identity contract
}

class MapMatchEquiv : public ::testing::TestWithParam<EquivCase> {};

TEST_P(MapMatchEquiv, FastKernelMatchesReferenceKernel) {
  const EquivCase c = GetParam();
  const auto net = SmallGrid(c.seed);
  const auto matcher = MakeMatcher(net, c);
  const auto raws = SampleCase(net, c, 8);
  ASSERT_FALSE(raws.empty());
  HmmMapMatcher::Scratch scratch;
  int ok_count = 0;
  for (const auto& raw : raws) {
    auto fast = matcher.Match(raw, &scratch);
    auto ref = matcher.MatchReference(raw);
    ExpectSameResult(fast, ref);
    ok_count += fast.ok() ? 1 : 0;
  }
  // The sweep must actually exercise successful matches, not just errors.
  EXPECT_GT(ok_count, 0);
}

TEST_P(MapMatchEquiv, StreamingFinishBitIdenticalToBatch) {
  const EquivCase c = GetParam();
  const auto net = SmallGrid(c.seed);
  const auto matcher = MakeMatcher(net, c);
  const auto raws = SampleCase(net, c, 6);
  ASSERT_FALSE(raws.empty());
  StreamingMatcher stream(&matcher);
  for (const auto& raw : raws) {
    stream.Reset(raw.id);
    const size_t half = raw.points.size() / 2;
    for (size_t i = 0; i < raw.points.size(); ++i) {
      stream.MatchPoint(raw.points[i]);
      if (i + 1 == half) {
        // Mid-stream decode equals batch-matching the prefix, and must not
        // disturb the stream (Finish is non-destructive).
        traj::RawTrajectory prefix;
        prefix.id = raw.id;
        prefix.points.assign(raw.points.begin(), raw.points.begin() + half);
        ExpectSameResult(stream.Finish(), matcher.Match(prefix));
      }
    }
    ExpectSameResult(stream.Finish(), matcher.Match(raw));

    // Segment-level bit-identity as well.
    auto stream_pieces = stream.FinishSegments();
    auto batch_pieces = matcher.MatchSegments(raw);
    ASSERT_EQ(stream_pieces.ok(), batch_pieces.ok());
    if (stream_pieces.ok()) {
      ASSERT_EQ(stream_pieces->size(), batch_pieces->size());
      for (size_t i = 0; i < stream_pieces->size(); ++i) {
        EXPECT_EQ((*stream_pieces)[i].edges, (*batch_pieces)[i].edges);
        EXPECT_EQ((*stream_pieces)[i].start_time,
                  (*batch_pieces)[i].start_time);
      }
    }
  }
}

TEST_P(MapMatchEquiv, MatchBatchIsThreadCountInvariant) {
  const EquivCase c = GetParam();
  const auto net = SmallGrid(c.seed);
  const auto matcher = MakeMatcher(net, c);
  const auto raws = SampleCase(net, c, 12);
  ASSERT_FALSE(raws.empty());
  const auto sequential = matcher.MatchBatch(raws, 1);
  ASSERT_EQ(sequential.size(), raws.size());
  for (int threads : {2, 4}) {
    const auto parallel = matcher.MatchBatch(raws, threads);
    ASSERT_EQ(parallel.size(), raws.size());
    for (size_t i = 0; i < raws.size(); ++i) {
      ExpectSameResult(parallel[i], sequential[i]);
    }
  }
  // And per-index identity with plain Match().
  for (size_t i = 0; i < raws.size(); ++i) {
    ExpectSameResult(sequential[i], matcher.Match(raws[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapMatchEquiv,
    ::testing::Values(EquivCase{3, 15.0, 0.0, 60.0, 6},
                      EquivCase{3, 40.0, 0.15, 60.0, 6},
                      EquivCase{11, 15.0, 0.3, 40.0, 2},
                      EquivCase{11, 35.0, 0.0, 100.0, 8},
                      EquivCase{19, 25.0, 0.1, 80.0, 4}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_noise" +
             std::to_string(static_cast<int>(info.param.noise_m)) + "_drop" +
             std::to_string(static_cast<int>(info.param.dropout * 100)) +
             "_r" + std::to_string(static_cast<int>(info.param.radius_m)) +
             "_k" + std::to_string(info.param.max_cands);
    });

}  // namespace
}  // namespace rl4oasd::mapmatch
