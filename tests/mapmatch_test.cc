// Map-matching substrate tests: spatial index correctness and end-to-end
// HMM matching of noisy synthetic GPS back onto the true route.
#include <gtest/gtest.h>

#include "mapmatch/hmm_matcher.h"
#include "mapmatch/spatial_index.h"
#include "test_util.h"
#include "traj/gps_sampler.h"

namespace rl4oasd::mapmatch {
namespace {

using ::rl4oasd::testing::SmallDataset;
using ::rl4oasd::testing::SmallGrid;

TEST(SpatialIndexTest, FindsNearbyEdges) {
  const auto net = SmallGrid();
  SpatialIndex index(&net);
  // Query at an edge midpoint must return that edge first.
  const roadnet::EdgeId e = 10;
  const auto candidates = index.Query(net.EdgeMidpoint(e), 50.0);
  ASSERT_FALSE(candidates.empty());
  // The edge itself (or its reverse twin, which is collinear) is closest.
  EXPECT_LT(candidates[0].distance_m, 1.0);
  bool found = false;
  for (const auto& c : candidates) found |= (c.edge == e);
  EXPECT_TRUE(found);
}

TEST(SpatialIndexTest, RespectsRadius) {
  const auto net = SmallGrid();
  SpatialIndex index(&net);
  const auto p = net.EdgeMidpoint(0);
  for (const auto& c : index.Query(p, 30.0)) {
    EXPECT_LE(c.distance_m, 30.0);
  }
}

TEST(SpatialIndexTest, CandidatesSortedAndCapped) {
  const auto net = SmallGrid();
  SpatialIndex index(&net);
  const auto candidates = index.Query(net.EdgeMidpoint(5), 500.0, 4);
  EXPECT_LE(candidates.size(), 4u);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].distance_m, candidates[i].distance_m);
  }
}

TEST(SpatialIndexTest, FarAwayQueryIsEmpty) {
  const auto net = SmallGrid();
  SpatialIndex index(&net);
  EXPECT_TRUE(index.Query({10.0, 50.0}, 50.0).empty());
}

class HmmMatcherTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HmmMatcherTest, RecoversTrueRouteFromNoisyGps) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 3, 0.1, GetParam());
  traj::GpsSamplerConfig scfg;
  scfg.noise_sigma_m = 8.0;
  traj::GpsSampler sampler(&net, scfg, GetParam());
  HmmMapMatcher matcher(&net);

  int evaluated = 0;
  double jaccard_sum = 0.0;
  for (size_t k = 0; k < std::min<size_t>(ds.size(), 15); ++k) {
    const auto& truth = ds[k].traj;
    const auto raw = sampler.Sample(truth);
    if (raw.points.size() < 5) continue;
    auto matched = matcher.Match(raw);
    ASSERT_TRUE(matched.ok()) << matched.status().ToString();
    EXPECT_TRUE(net.IsConnectedPath(matched->edges));
    // Jaccard between true and matched edge sets should be high.
    std::set<traj::EdgeId> a(truth.edges.begin(), truth.edges.end());
    std::set<traj::EdgeId> b(matched->edges.begin(), matched->edges.end());
    std::vector<traj::EdgeId> inter;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(inter));
    const double jaccard = static_cast<double>(inter.size()) /
                           static_cast<double>(a.size() + b.size() -
                                               inter.size());
    jaccard_sum += jaccard;
    ++evaluated;
  }
  ASSERT_GT(evaluated, 0);
  // Average recovery should be strong on a clean grid.
  EXPECT_GT(jaccard_sum / evaluated, 0.75);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HmmMatcherTest, ::testing::Values(1, 7, 23));

TEST(HmmMatcherErrorsTest, EmptyTrajectoryRejected) {
  const auto net = SmallGrid();
  HmmMapMatcher matcher(&net);
  traj::RawTrajectory raw;
  const auto r = matcher.Match(raw);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HmmMatcherErrorsTest, OffNetworkGpsRejected) {
  const auto net = SmallGrid();
  HmmMapMatcher matcher(&net);
  traj::RawTrajectory raw;
  raw.points.push_back({{10.0, 50.0}, 0.0});
  raw.points.push_back({{10.0, 50.001}, 3.0});
  const auto r = matcher.Match(raw);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(HmmMatcherTest, PreservesStartTime) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 2);
  traj::GpsSampler sampler(&net, {});
  HmmMapMatcher matcher(&net);
  const auto raw = sampler.Sample(ds[0].traj);
  auto matched = matcher.Match(raw);
  ASSERT_TRUE(matched.ok());
  EXPECT_DOUBLE_EQ(matched->start_time, raw.points.front().t);
  EXPECT_EQ(matched->id, raw.id);
}

// Regression: the seed matcher stamped start_time from the first *raw* fix
// even when that fix was off-network and never matched. The contract is the
// first *matched* fix's timestamp.
TEST(HmmMatcherTest, StartTimeFromFirstMatchedFix) {
  const auto net = SmallGrid();
  HmmMapMatcher matcher(&net);
  traj::RawTrajectory raw;
  raw.id = 7;
  // Two fixes ~100 km off-network (dropped from the lattice), then two
  // on-network fixes starting at t = 100.
  raw.points.push_back({{10.0, 50.0}, 0.0});
  raw.points.push_back({{10.0, 50.001}, 2.0});
  const roadnet::EdgeId e = 10;
  const roadnet::EdgeId next = net.NextEdges(e)[0];
  raw.points.push_back({net.EdgeMidpoint(e), 100.0});
  raw.points.push_back({net.EdgeMidpoint(next), 103.0});
  auto matched = matcher.Match(raw);
  ASSERT_TRUE(matched.ok()) << matched.status().ToString();
  EXPECT_DOUBLE_EQ(matched->start_time, 100.0);
}

// Exactness: the grid index must return the same candidate set as a brute
// force scan over every edge, in the pinned (distance, edge id) order.
TEST(SpatialIndexTest, QueryMatchesBruteForceExactly) {
  const auto net = SmallGrid();
  SpatialIndex index(&net);
  const std::vector<double> radii = {15.0, 60.0, 140.0, 400.0};
  for (roadnet::EdgeId probe = 0;
       probe < static_cast<roadnet::EdgeId>(net.NumEdges()); probe += 37) {
    const auto p = net.EdgeMidpoint(probe);
    for (double radius : radii) {
      std::vector<EdgeCandidate> expected;
      for (roadnet::EdgeId e = 0;
           e < static_cast<roadnet::EdgeId>(net.NumEdges()); ++e) {
        const auto& edge = net.edge(e);
        const double d = roadnet::PointToSegmentMeters(
            p, net.vertex(edge.from).pos, net.vertex(edge.to).pos);
        if (d <= radius) expected.push_back({e, d});
      }
      std::sort(expected.begin(), expected.end(),
                [](const EdgeCandidate& a, const EdgeCandidate& b) {
                  return a.distance_m != b.distance_m
                             ? a.distance_m < b.distance_m
                             : a.edge < b.edge;
                });
      const auto got = index.Query(p, radius, net.NumEdges());
      ASSERT_EQ(got.size(), expected.size()) << "radius " << radius;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].edge, expected[i].edge);
        EXPECT_EQ(got[i].distance_m, expected[i].distance_m);
      }
      // The seed-era reference query returns the identical sequence.
      const auto ref = index.QueryReference(p, radius, net.NumEdges());
      ASSERT_EQ(ref.size(), expected.size()) << "radius " << radius;
      for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i].edge, expected[i].edge);
        EXPECT_EQ(ref[i].distance_m, expected[i].distance_m);
      }
      // The cap keeps the prefix of the same order.
      const auto capped = index.Query(p, radius, 3);
      for (size_t i = 0; i < capped.size(); ++i) {
        EXPECT_EQ(capped[i].edge, expected[i].edge);
      }
    }
  }
}

// Two line subnetworks ~2.2 km apart with no connecting edge: the gap is
// unbridgeable. The seed matcher failed the whole trajectory with an
// Internal error; the contract now is graceful degradation into pieces.
roadnet::RoadNetwork MakeTwoIslands() {
  roadnet::RoadNetwork net;
  std::vector<roadnet::VertexId> a, b;
  for (int i = 0; i < 3; ++i) {
    a.push_back(net.AddVertex({30.0, 104.0 + 0.001 * i}));
    b.push_back(net.AddVertex({30.02, 104.0 + 0.001 * i}));
  }
  net.AddEdge(a[0], a[1]);  // edge 0
  net.AddEdge(a[1], a[2]);  // edge 1
  net.AddEdge(b[0], b[1]);  // edge 2
  net.AddEdge(b[1], b[2]);  // edge 3
  net.Build();
  return net;
}

traj::RawTrajectory TwoIslandsRaw(const roadnet::RoadNetwork& net) {
  traj::RawTrajectory raw;
  raw.id = 42;
  raw.points.push_back({net.EdgeMidpoint(0), 0.0});
  raw.points.push_back({net.EdgeMidpoint(1), 2.0});
  raw.points.push_back({net.EdgeMidpoint(2), 50.0});
  raw.points.push_back({net.EdgeMidpoint(3), 52.0});
  raw.points.push_back({net.EdgeMidpoint(3), 54.0});
  return raw;
}

TEST(GapHandlingTest, UnbridgeableGapDegradesToLargestPiece) {
  const auto net = MakeTwoIslands();
  HmmMapMatcher matcher(&net);
  const auto raw = TwoIslandsRaw(net);
  // Seed behavior: Status::Internal("could not stitch matched edges").
  auto matched = matcher.Match(raw);
  ASSERT_TRUE(matched.ok()) << matched.status().ToString();
  // The second island spans 3 of the 5 fixes, so it is the piece returned.
  EXPECT_EQ(matched->edges, (std::vector<traj::EdgeId>{2, 3}));
  EXPECT_DOUBLE_EQ(matched->start_time, 50.0);
}

TEST(GapHandlingTest, MatchSegmentsReturnsAllPiecesInTimeOrder) {
  const auto net = MakeTwoIslands();
  for (GapPolicy policy : {GapPolicy::kBridge, GapPolicy::kSplit}) {
    HmmConfig cfg;
    cfg.gap_policy = policy;
    HmmMapMatcher matcher(&net, cfg);
    const auto raw = TwoIslandsRaw(net);
    auto pieces = matcher.MatchSegments(raw);
    ASSERT_TRUE(pieces.ok()) << pieces.status().ToString();
    ASSERT_EQ(pieces->size(), 2u);
    EXPECT_EQ((*pieces)[0].edges, (std::vector<traj::EdgeId>{0, 1}));
    EXPECT_DOUBLE_EQ((*pieces)[0].start_time, 0.0);
    EXPECT_EQ((*pieces)[1].edges, (std::vector<traj::EdgeId>{2, 3}));
    EXPECT_DOUBLE_EQ((*pieces)[1].start_time, 50.0);
  }
}

// Pinned restart semantics (segmented Viterbi): under kSplit, matching a
// gapped trajectory piecewise equals matching each side independently.
TEST(GapHandlingTest, SplitPiecesEqualIndependentMatches) {
  const auto net = MakeTwoIslands();
  HmmConfig cfg;
  cfg.gap_policy = GapPolicy::kSplit;
  HmmMapMatcher matcher(&net, cfg);
  const auto raw = TwoIslandsRaw(net);
  auto pieces = matcher.MatchSegments(raw);
  ASSERT_TRUE(pieces.ok());
  ASSERT_EQ(pieces->size(), 2u);

  traj::RawTrajectory pre, post;
  pre.id = post.id = raw.id;
  pre.points.assign(raw.points.begin(), raw.points.begin() + 2);
  post.points.assign(raw.points.begin() + 2, raw.points.end());
  auto m_pre = matcher.Match(pre);
  auto m_post = matcher.Match(post);
  ASSERT_TRUE(m_pre.ok() && m_post.ok());
  EXPECT_EQ((*pieces)[0].edges, m_pre->edges);
  EXPECT_EQ((*pieces)[0].start_time, m_pre->start_time);
  EXPECT_EQ((*pieces)[1].edges, m_post->edges);
  EXPECT_EQ((*pieces)[1].start_time, m_post->start_time);
}

// A divided one-way loop: two parallel carriageways ~89 m apart joined at
// the ends. Hopping from the eastbound to the westbound side is a GPS gap
// (network distance ~665 m exceeds the detour bound ~445 m) but a
// connecting path exists, so kBridge stitches one connected route while
// kSplit splits.
roadnet::RoadNetwork MakeDividedLoop() {
  roadnet::RoadNetwork net;
  const auto p0 = net.AddVertex({30.0, 104.000});
  const auto p1 = net.AddVertex({30.0, 104.002});
  const auto p2 = net.AddVertex({30.0, 104.004});
  const auto q0 = net.AddVertex({30.0008, 104.004});
  const auto q1 = net.AddVertex({30.0008, 104.002});
  const auto q2 = net.AddVertex({30.0008, 104.000});
  net.AddEdge(p0, p1);  // 0: eastbound
  net.AddEdge(p1, p2);  // 1
  net.AddEdge(p2, q0);  // 2: crossover
  net.AddEdge(q0, q1);  // 3: westbound
  net.AddEdge(q1, q2);  // 4
  net.AddEdge(q2, p0);  // 5: crossover back
  net.Build();
  return net;
}

TEST(GapHandlingTest, BridgeableGapStitchesUnderBridgePolicy) {
  const auto net = MakeDividedLoop();
  traj::RawTrajectory raw;
  raw.id = 9;
  raw.points.push_back({net.EdgeMidpoint(0), 0.0});
  raw.points.push_back({net.EdgeMidpoint(0), 2.0});
  raw.points.push_back({net.EdgeMidpoint(4), 10.0});

  HmmMapMatcher bridge_matcher(&net);
  auto stitched = bridge_matcher.Match(raw);
  ASSERT_TRUE(stitched.ok()) << stitched.status().ToString();
  EXPECT_EQ(stitched->edges, (std::vector<traj::EdgeId>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(stitched->start_time, 0.0);

  HmmConfig split_cfg;
  split_cfg.gap_policy = GapPolicy::kSplit;
  HmmMapMatcher split_matcher(&net, split_cfg);
  auto pieces = split_matcher.MatchSegments(raw);
  ASSERT_TRUE(pieces.ok());
  ASSERT_EQ(pieces->size(), 2u);
  EXPECT_EQ((*pieces)[0].edges, (std::vector<traj::EdgeId>{0}));
  EXPECT_EQ((*pieces)[1].edges, (std::vector<traj::EdgeId>{4}));
  EXPECT_DOUBLE_EQ((*pieces)[1].start_time, 10.0);
  // The split policy's Match keeps the piece with the most fixes (2 vs 1).
  auto best = split_matcher.Match(raw);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->edges, (std::vector<traj::EdgeId>{0}));
}

}  // namespace
}  // namespace rl4oasd::mapmatch
