// Map-matching substrate tests: spatial index correctness and end-to-end
// HMM matching of noisy synthetic GPS back onto the true route.
#include <gtest/gtest.h>

#include "mapmatch/hmm_matcher.h"
#include "mapmatch/spatial_index.h"
#include "test_util.h"
#include "traj/gps_sampler.h"

namespace rl4oasd::mapmatch {
namespace {

using ::rl4oasd::testing::SmallDataset;
using ::rl4oasd::testing::SmallGrid;

TEST(SpatialIndexTest, FindsNearbyEdges) {
  const auto net = SmallGrid();
  SpatialIndex index(&net);
  // Query at an edge midpoint must return that edge first.
  const roadnet::EdgeId e = 10;
  const auto candidates = index.Query(net.EdgeMidpoint(e), 50.0);
  ASSERT_FALSE(candidates.empty());
  // The edge itself (or its reverse twin, which is collinear) is closest.
  EXPECT_LT(candidates[0].distance_m, 1.0);
  bool found = false;
  for (const auto& c : candidates) found |= (c.edge == e);
  EXPECT_TRUE(found);
}

TEST(SpatialIndexTest, RespectsRadius) {
  const auto net = SmallGrid();
  SpatialIndex index(&net);
  const auto p = net.EdgeMidpoint(0);
  for (const auto& c : index.Query(p, 30.0)) {
    EXPECT_LE(c.distance_m, 30.0);
  }
}

TEST(SpatialIndexTest, CandidatesSortedAndCapped) {
  const auto net = SmallGrid();
  SpatialIndex index(&net);
  const auto candidates = index.Query(net.EdgeMidpoint(5), 500.0, 4);
  EXPECT_LE(candidates.size(), 4u);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].distance_m, candidates[i].distance_m);
  }
}

TEST(SpatialIndexTest, FarAwayQueryIsEmpty) {
  const auto net = SmallGrid();
  SpatialIndex index(&net);
  EXPECT_TRUE(index.Query({10.0, 50.0}, 50.0).empty());
}

class HmmMatcherTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HmmMatcherTest, RecoversTrueRouteFromNoisyGps) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 3, 0.1, GetParam());
  traj::GpsSamplerConfig scfg;
  scfg.noise_sigma_m = 8.0;
  traj::GpsSampler sampler(&net, scfg, GetParam());
  HmmMapMatcher matcher(&net);

  int evaluated = 0;
  double jaccard_sum = 0.0;
  for (size_t k = 0; k < std::min<size_t>(ds.size(), 15); ++k) {
    const auto& truth = ds[k].traj;
    const auto raw = sampler.Sample(truth);
    if (raw.points.size() < 5) continue;
    auto matched = matcher.Match(raw);
    ASSERT_TRUE(matched.ok()) << matched.status().ToString();
    EXPECT_TRUE(net.IsConnectedPath(matched->edges));
    // Jaccard between true and matched edge sets should be high.
    std::set<traj::EdgeId> a(truth.edges.begin(), truth.edges.end());
    std::set<traj::EdgeId> b(matched->edges.begin(), matched->edges.end());
    std::vector<traj::EdgeId> inter;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(inter));
    const double jaccard = static_cast<double>(inter.size()) /
                           static_cast<double>(a.size() + b.size() -
                                               inter.size());
    jaccard_sum += jaccard;
    ++evaluated;
  }
  ASSERT_GT(evaluated, 0);
  // Average recovery should be strong on a clean grid.
  EXPECT_GT(jaccard_sum / evaluated, 0.75);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HmmMatcherTest, ::testing::Values(1, 7, 23));

TEST(HmmMatcherErrorsTest, EmptyTrajectoryRejected) {
  const auto net = SmallGrid();
  HmmMapMatcher matcher(&net);
  traj::RawTrajectory raw;
  const auto r = matcher.Match(raw);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HmmMatcherErrorsTest, OffNetworkGpsRejected) {
  const auto net = SmallGrid();
  HmmMapMatcher matcher(&net);
  traj::RawTrajectory raw;
  raw.points.push_back({{10.0, 50.0}, 0.0});
  raw.points.push_back({{10.0, 50.001}, 3.0});
  const auto r = matcher.Match(raw);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(HmmMatcherTest, PreservesStartTime) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 2);
  traj::GpsSampler sampler(&net, {});
  HmmMapMatcher matcher(&net);
  const auto raw = sampler.Sample(ds[0].traj);
  auto matched = matcher.Match(raw);
  ASSERT_TRUE(matched.ok());
  EXPECT_DOUBLE_EQ(matched->start_time, raw.points.front().t);
  EXPECT_EQ(matched->id, raw.id);
}

}  // namespace
}  // namespace rl4oasd::mapmatch
