// Negative-compile snippet (class: double acquisition). Re-acquiring a
// capability this scope already holds must fail under
// `clang++ -Wthread-safety -Werror`; valid C++ otherwise (GCC accepts —
// at runtime the debug rank checker would abort on the same line).
#include "common/mutex.h"

int main() {
  rl4oasd::common::Mutex mu;
  mu.Lock();
  mu.Lock();  // BAD: already held
  mu.Unlock();
  mu.Unlock();
  return 0;
}
