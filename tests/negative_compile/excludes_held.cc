// Negative-compile snippet (class: EXCLUDES / locks-excluded). Calling an
// EXCLUDES(mu) function while holding mu must fail under
// `clang++ -Wthread-safety -Werror`; valid C++ otherwise (GCC accepts).
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

rl4oasd::common::Mutex mu;

void MustRunUnlocked() RL4OASD_EXCLUDES(mu) {}

}  // namespace

int main() {
  mu.Lock();
  MustRunUnlocked();  // BAD: mu is held
  mu.Unlock();
  return 0;
}
