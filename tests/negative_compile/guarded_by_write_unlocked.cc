// Negative-compile snippet (class: GUARDED_BY access). Writing a guarded
// member without holding its mutex must fail under
// `clang++ -Wthread-safety -Werror`; the snippet is valid C++, so GCC
// (where the annotations are no-ops) accepts it — see the WILL_FAIL logic
// in tests/CMakeLists.txt.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() { ++value_; }  // BAD: mu_ is not held

 private:
  rl4oasd::common::Mutex mu_;
  int value_ RL4OASD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
