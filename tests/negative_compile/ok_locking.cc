// Positive control for the negative-compile harness: fully correct locking
// that must compile clean under BOTH `clang++ -Wthread-safety -Werror` and
// GCC. If this one fails, the harness (or the annotations themselves) is
// broken, not the snippet under test.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    rl4oasd::common::MutexLock lock(&mu_);
    ++value_;
  }

  int Get() {
    rl4oasd::common::MutexLock lock(&mu_);
    return value_;
  }

 private:
  rl4oasd::common::Mutex mu_;
  int value_ RL4OASD_GUARDED_BY(mu_) = 0;
};

rl4oasd::common::Mutex gmu;
int gvalue RL4OASD_GUARDED_BY(gmu) = 0;

void Touch() RL4OASD_REQUIRES(gmu) { ++gvalue; }

}  // namespace

int main() {
  Counter c;
  c.Bump();
  gmu.Lock();
  Touch();
  gmu.Unlock();
  return c.Get() == 1 ? 0 : 1;
}
