// Negative-compile snippet (class: REQUIRES precondition). Calling a
// REQUIRES(mu) function without holding mu must fail under
// `clang++ -Wthread-safety -Werror`; valid C++ otherwise (GCC accepts).
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

rl4oasd::common::Mutex mu;
int value RL4OASD_GUARDED_BY(mu) = 0;

void Touch() RL4OASD_REQUIRES(mu) { ++value; }

}  // namespace

int main() {
  Touch();  // BAD: mu is not held at the call site
  return 0;
}
