// Negative-compile snippet (class: release of an unheld capability).
// Unlocking a mutex this scope does not hold must fail under
// `clang++ -Wthread-safety -Werror`; valid C++ otherwise (GCC accepts —
// at runtime the debug checker aborts with "does not hold").
#include "common/mutex.h"

int main() {
  rl4oasd::common::Mutex mu;
  mu.Unlock();  // BAD: never acquired
  return 0;
}
