// Batch-vs-streaming equivalence property tests for the batched inference
// path: the GEMM kernel, batched LSTM/GRU steps, batched Linear forward,
// batched embedding gather, stacked cores, and RSRNet's batched streaming
// step — each compared element-wise against the scalar path it fuses.
//
// Equivalence contract (see nn::Gemm): the batched kernels add each output
// element's products in the same ascending-k order as the scalar dot loops,
// so results agree to <= 1e-6 relative tolerance (typically bit-identical
// on one toolchain; the tolerance absorbs FMA-contraction differences).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/rsrnet.h"
#include "nn/embedding.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/rnn.h"
#include "nn/stacked.h"
#include "nn/tensor.h"

namespace rl4oasd::nn {
namespace {

constexpr float kRelTol = 1e-6f;

void ExpectClose(float batched, float scalar, const std::string& what) {
  const float tol = kRelTol * std::max(1.0f, std::fabs(scalar));
  EXPECT_NEAR(batched, scalar, tol) << what;
}

Vec RandomVec(size_t n, Rng* rng, double scale = 1.0) {
  Vec v(n);
  for (float& x : v) x = static_cast<float>(rng->Uniform(-scale, scale));
  return v;
}

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<float>(rng->Uniform(-1.0, 1.0));
    }
  }
  return m;
}

TEST(GemmTest, MatchesNaiveTripleLoop) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t m = 1 + rng.UniformInt(70);
    const size_t k = 1 + rng.UniformInt(130);
    const size_t n = 1 + rng.UniformInt(50);  // crosses the register tiles
    const Matrix a = RandomMatrix(m, k, &rng);
    const Matrix b = RandomMatrix(k, n, &rng);
    Matrix c;
    MatMul(a, b, &c);
    ASSERT_EQ(c.rows(), m);
    ASSERT_EQ(c.cols(), n);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        float ref = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) ref += a(i, kk) * b(kk, j);
        ExpectClose(c(i, j), ref, "C(" + std::to_string(i) + "," +
                                      std::to_string(j) + ")");
      }
    }
    // Accumulate mode adds the complete ascending-k product chain onto the
    // existing C in one step (the reference mirrors that association —
    // "2 * C" or summing into C element-wise would differ by more than
    // rounding tolerance at large k).
    Matrix c2 = c;
    MatMulAccum(a, b, &c2);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        float chain = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) chain += a(i, kk) * b(kk, j);
        ExpectClose(c2(i, j), c(i, j) + chain, "accumulated C");
      }
    }
  }
}

TEST(GemmTest, SingleColumnMatchesMatVec) {
  // With n == 1 the GEMM degenerates to the scalar matvec — and must agree
  // with it, since that is exactly the B=1 batched-inference case.
  Rng rng(77);
  const Matrix a = RandomMatrix(33, 129, &rng);
  const Vec x = RandomVec(129, &rng);
  Matrix xm(129, 1);
  for (size_t i = 0; i < x.size(); ++i) xm(i, 0) = x[i];
  Matrix c;
  MatMul(a, xm, &c);
  Vec y(33);
  MatVec(a, x.data(), y.data());
  for (size_t i = 0; i < y.size(); ++i) {
    ExpectClose(c(i, 0), y[i], "row " + std::to_string(i));
  }
}

TEST(TensorBatchTest, SoftmaxColumnsMatchesPerColumnSoftmax) {
  Rng rng(5);
  Matrix logits = RandomMatrix(4, 9, &rng);
  Matrix batched = logits;
  SoftmaxColumnsInPlace(&batched);
  for (size_t j = 0; j < logits.cols(); ++j) {
    float col[4];
    for (size_t r = 0; r < 4; ++r) col[r] = logits(r, j);
    SoftmaxInPlace(col, 4);
    for (size_t r = 0; r < 4; ++r) {
      ExpectClose(batched(r, j), col[r], "column " + std::to_string(j));
    }
  }
}

TEST(EmbeddingBatchTest, LookupBatchMatchesLookup) {
  Rng rng(9);
  Embedding embed("t.embed", 23, 7, &rng);
  for (const size_t batch : {size_t{1}, size_t{2}, size_t{13}}) {
    std::vector<size_t> ids(batch);
    for (size_t b = 0; b < batch; ++b) ids[b] = rng.UniformInt(23);
    Matrix out;
    embed.LookupBatch(ids, &out);
    ASSERT_EQ(out.rows(), 7u);
    ASSERT_EQ(out.cols(), batch);
    for (size_t b = 0; b < batch; ++b) {
      const float* row = embed.Lookup(ids[b]);
      for (size_t r = 0; r < 7; ++r) {
        EXPECT_EQ(out(r, b), row[r]) << "id " << ids[b] << " dim " << r;
      }
    }
  }
}

TEST(LinearBatchTest, ForwardBatchMatchesForward) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t in = 1 + rng.UniformInt(60);
    const size_t out_dim = 1 + rng.UniformInt(20);
    const size_t batch = 1 + rng.UniformInt(40);
    Linear layer("t.lin", in, out_dim, &rng);
    const Matrix x = RandomMatrix(in, batch, &rng);
    Matrix out;
    layer.ForwardBatch(x, &out);
    Vec xcol(in);
    Vec ycol(out_dim);
    for (size_t b = 0; b < batch; ++b) {
      for (size_t r = 0; r < in; ++r) xcol[r] = x(r, b);
      layer.Forward(xcol.data(), ycol.data());
      for (size_t r = 0; r < out_dim; ++r) {
        ExpectClose(out(r, b), ycol[r], "sample " + std::to_string(b));
      }
    }
  }
}

// Drives `steps` batched steps and B independent scalar streams over the
// same random inputs (starting from the same random nonzero carried states)
// and compares the full state after every step.
template <typename Cell, typename ScalarState, typename BatchState>
void CheckRecurrentBatchAgainstStreaming(Rng* rng, int trials) {
  for (int trial = 0; trial < trials; ++trial) {
    const size_t input_dim = 1 + rng->UniformInt(40);
    const size_t hidden = 1 + rng->UniformInt(40);
    const size_t batch = 1 + rng->UniformInt(33);  // includes B=1
    Cell cell("t.cell", input_dim, hidden, rng);
    // Random nonzero carried states (a mid-trip batch never starts at 0).
    std::vector<ScalarState> scalar(batch, ScalarState(hidden));
    BatchState batched(hidden, batch);
    for (size_t b = 0; b < batch; ++b) {
      scalar[b].h = RandomVec(hidden, rng);
      for (size_t r = 0; r < hidden; ++r) batched.h(r, b) = scalar[b].h[r];
      if constexpr (requires { scalar[b].c; }) {
        scalar[b].c = RandomVec(hidden, rng);
        for (size_t r = 0; r < hidden; ++r) batched.c(r, b) = scalar[b].c[r];
      }
    }
    for (int step = 0; step < 4; ++step) {
      const Matrix x = RandomMatrix(input_dim, batch, rng);
      cell.StepForwardBatch(x, &batched);
      Vec xcol(input_dim);
      for (size_t b = 0; b < batch; ++b) {
        for (size_t r = 0; r < input_dim; ++r) xcol[r] = x(r, b);
        cell.StepForward(xcol.data(), &scalar[b]);
        for (size_t r = 0; r < hidden; ++r) {
          ExpectClose(batched.h(r, b), scalar[b].h[r],
                      "h sample " + std::to_string(b) + " step " +
                          std::to_string(step));
          if constexpr (requires { scalar[b].c; }) {
            ExpectClose(batched.c(r, b), scalar[b].c[r],
                        "c sample " + std::to_string(b) + " step " +
                            std::to_string(step));
          }
        }
      }
    }
  }
}

TEST(LstmBatchTest, StepForwardBatchMatchesStreaming) {
  Rng rng(21);
  CheckRecurrentBatchAgainstStreaming<Lstm, LstmState, LstmBatchState>(&rng,
                                                                       8);
}

TEST(GruBatchTest, StepForwardBatchMatchesStreaming) {
  Rng rng(22);
  CheckRecurrentBatchAgainstStreaming<Gru, GruState, GruBatchState>(&rng, 8);
}

TEST(RnnBatchStateTest, GatherScatterRoundTrips) {
  Rng rng(31);
  const size_t S = 11;
  const size_t B = 5;
  std::vector<RnnState> states(B, RnnState(S));
  for (auto& s : states) {
    s.h = RandomVec(S, &rng);
    s.c = RandomVec(S, &rng);
  }
  std::vector<const RnnState*> in;
  std::vector<RnnState*> out;
  for (auto& s : states) {
    in.push_back(&s);
    out.push_back(&s);
  }
  RnnBatchState batch;
  batch.Gather(in, S);
  const std::vector<RnnState> before = states;
  for (auto& s : states) s.Reset();
  batch.Scatter(out);
  for (size_t b = 0; b < B; ++b) {
    EXPECT_EQ(states[b].h, before[b].h);
    EXPECT_EQ(states[b].c, before[b].c);
  }
}

void CheckRecurrentNetBatch(RnnKind kind, size_t layers, uint64_t seed) {
  Rng rng(seed);
  const size_t input_dim = 1 + rng.UniformInt(20);
  const size_t hidden = 1 + rng.UniformInt(20);
  const size_t batch = 2 + rng.UniformInt(20);
  std::unique_ptr<RecurrentNet> net;
  if (layers > 1) {
    net = std::make_unique<StackedRnn>(kind, "t.net", input_dim, hidden,
                                       layers, &rng);
  } else {
    net = MakeRecurrentNet(kind, "t.net", input_dim, hidden, &rng);
  }
  const size_t S = net->state_size();
  std::vector<RnnState> scalar(batch, RnnState(S));
  Rng init(seed + 1);
  for (auto& s : scalar) {
    s.h = RandomVec(S, &init);
    s.c = RandomVec(S, &init);
  }
  std::vector<const RnnState*> gather_ptrs;
  std::vector<RnnState*> scatter_ptrs;
  std::vector<RnnState> batched_states = scalar;  // copies evolve via batch
  for (auto& s : batched_states) {
    gather_ptrs.push_back(&s);
    scatter_ptrs.push_back(&s);
  }
  for (int step = 0; step < 3; ++step) {
    const Matrix x = RandomMatrix(input_dim, batch, &rng);
    RnnBatchState bstate;
    bstate.Gather(gather_ptrs, S);
    net->StepForwardBatch(x, &bstate);
    bstate.Scatter(scatter_ptrs);
    Vec xcol(input_dim);
    for (size_t b = 0; b < batch; ++b) {
      for (size_t r = 0; r < input_dim; ++r) xcol[r] = x(r, b);
      net->StepForward(xcol.data(), &scalar[b]);
      for (size_t r = 0; r < S; ++r) {
        ExpectClose(batched_states[b].h[r], scalar[b].h[r],
                    RnnKindName(kind) + std::string(" h sample ") +
                        std::to_string(b));
        ExpectClose(batched_states[b].c[r], scalar[b].c[r],
                    RnnKindName(kind) + std::string(" c sample ") +
                        std::to_string(b));
      }
    }
  }
}

TEST(RecurrentNetBatchTest, LstmAdapterMatchesStreaming) {
  CheckRecurrentNetBatch(RnnKind::kLstm, 1, 41);
}

TEST(RecurrentNetBatchTest, GruAdapterMatchesStreaming) {
  CheckRecurrentNetBatch(RnnKind::kGru, 1, 42);
}

TEST(RecurrentNetBatchTest, StackedLstmMatchesStreaming) {
  CheckRecurrentNetBatch(RnnKind::kLstm, 3, 43);
}

TEST(RecurrentNetBatchTest, StackedGruMatchesStreaming) {
  CheckRecurrentNetBatch(RnnKind::kGru, 2, 44);
}

class RsrNetBatchTest : public ::testing::TestWithParam<nn::RnnKind> {};

TEST_P(RsrNetBatchTest, StepForwardBatchMatchesScalar) {
  // Persistent per-trip streams advanced through a mix of batched and
  // scalar steps, with varying batch compositions per call — the ragged
  // final batch of a draining ingest wave is just a smaller B.
  core::RsrNetConfig cfg;
  cfg.num_edges = 50;
  cfg.embed_dim = 12;
  cfg.nrf_dim = 6;
  cfg.hidden_dim = 10;
  cfg.rnn_kind = GetParam();
  cfg.num_layers = GetParam() == nn::RnnKind::kLstm ? 2 : 1;
  core::RsrNet net(cfg);

  Rng rng(55);
  constexpr size_t kStreams = 9;
  std::vector<core::RsrStream> batched_streams(kStreams);
  std::vector<core::RsrStream> scalar_streams(kStreams);
  for (int step = 0; step < 6; ++step) {
    // A random subset of streams receives a point this "wave".
    std::vector<size_t> wave;
    for (size_t i = 0; i < kStreams; ++i) {
      if (rng.Bernoulli(0.7)) wave.push_back(i);
    }
    if (wave.empty()) wave.push_back(0);
    const size_t B = wave.size();
    std::vector<traj::EdgeId> edges(B);
    std::vector<uint8_t> nrf(B);
    std::vector<core::RsrStream*> streams(B);
    for (size_t b = 0; b < B; ++b) {
      edges[b] = static_cast<traj::EdgeId>(rng.UniformInt(cfg.num_edges));
      nrf[b] = rng.Bernoulli(0.5) ? 1 : 0;
      streams[b] = &batched_streams[wave[b]];
    }
    Matrix z;
    Matrix probs;
    net.StepForwardBatch(edges, nrf, streams, &z, &probs);
    ASSERT_EQ(z.rows(), net.z_dim());
    ASSERT_EQ(z.cols(), B);
    for (size_t b = 0; b < B; ++b) {
      std::array<float, 2> scalar_probs{};
      const Vec scalar_z = net.StepForward(edges[b], nrf[b],
                                           &scalar_streams[wave[b]],
                                           &scalar_probs);
      for (size_t r = 0; r < scalar_z.size(); ++r) {
        ExpectClose(z(r, b), scalar_z[r],
                    "z stream " + std::to_string(wave[b]) + " step " +
                        std::to_string(step));
      }
      ExpectClose(probs(0, b), scalar_probs[0], "p0");
      ExpectClose(probs(1, b), scalar_probs[1], "p1");
      const auto& bs = batched_streams[wave[b]].state;
      const auto& ss = scalar_streams[wave[b]].state;
      ASSERT_EQ(bs.h.size(), ss.h.size());
      for (size_t r = 0; r < ss.h.size(); ++r) {
        ExpectClose(bs.h[r], ss.h[r], "carried h");
        ExpectClose(bs.c[r], ss.c[r], "carried c");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, RsrNetBatchTest,
                         ::testing::Values(nn::RnnKind::kLstm,
                                           nn::RnnKind::kGru));

}  // namespace
}  // namespace rl4oasd::nn
