// Sequence-level (GEMM-backed) BPTT vs the per-step reference backward.
//
// The contract under test is BIT-IDENTITY on the single-thread path: from
// zeroed gradient buffers, BackwardSeq must reproduce Backward exactly —
// not within a tolerance — because the golden end-to-end regression pins
// trained-model outputs across this refactor. The GEMM packing earns this
// by replaying the per-step accumulation order: weight-gradient matrices
// pack timesteps as reversed-time columns (ascending-k in nn::Gemm ==
// descending-t in the per-step loop), input gradients as forward-order
// rows, and biases accumulate element-wise in loop order.
//
// The worker-local GradientSink path is also exact here (sink buffers
// start zeroed and fold back with one add per element); the documented
// <= 1e-6 relative tolerance applies only to the data-parallel *training*
// equivalence (stale gradients across a minibatch), which is covered by
// core_rl4oasd_parallel_test.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/stacked.h"

namespace rl4oasd::nn {
namespace {

std::vector<Vec> RandomInputs(size_t t, size_t dim, Rng* rng) {
  std::vector<Vec> xs(t, Vec(dim));
  for (auto& x : xs) {
    for (auto& v : x) v = static_cast<float>(rng->Uniform(-1.0, 1.0));
  }
  return xs;
}

std::vector<const float*> Pointers(const std::vector<Vec>& xs) {
  std::vector<const float*> ps;
  ps.reserve(xs.size());
  for (const auto& x : xs) ps.push_back(x.data());
  return ps;
}

/// Snapshot of every gradient in a registry.
std::vector<Matrix> GradSnapshot(const ParameterRegistry& reg) {
  std::vector<Matrix> out;
  for (const Parameter* p : reg.params()) out.push_back(p->grad);
  return out;
}

::testing::AssertionResult BitIdentical(const Matrix& a, const Matrix& b,
                                        const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure() << what << ": shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (a.data()[i] != b.data()[i]) {
        return ::testing::AssertionFailure()
               << what << ": first mismatch at flat index " << i << ": "
               << a.data()[i] << " vs " << b.data()[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

struct Shape {
  size_t input;
  size_t hidden;
  size_t steps;
};

const Shape kShapes[] = {
    {1, 1, 1},    // degenerate: single unit, single step (no wh gradient)
    {3, 5, 2},    // tiny odd sizes (exercises GEMM tail tiles)
    {8, 8, 7},
    {17, 13, 29},  // odd sizes across several register-tile widths
    {32, 32, 40},  // the tuned RSRNet shape
};

TEST(NnBpttTest, LstmBackwardSeqBitIdenticalToPerStep) {
  for (const Shape& s : kShapes) {
    Rng rng(101 + s.input + s.hidden + s.steps);
    Lstm lstm("t", s.input, s.hidden, &rng);
    ParameterRegistry reg;
    lstm.RegisterParams(&reg);
    const auto xs = RandomInputs(s.steps, s.input, &rng);
    const auto caches = lstm.Forward(Pointers(xs));

    std::vector<Vec> d_h_vec(s.steps, Vec(s.hidden));
    Matrix d_h_mat(s.steps, s.hidden);
    for (size_t t = 0; t < s.steps; ++t) {
      for (size_t i = 0; i < s.hidden; ++i) {
        d_h_vec[t][i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
        d_h_mat(t, i) = d_h_vec[t][i];
      }
    }

    reg.ZeroGrad();
    std::vector<Vec> d_x_ref;
    lstm.Backward(caches, d_h_vec, &d_x_ref);
    const auto ref = GradSnapshot(reg);

    reg.ZeroGrad();
    Matrix d_x_seq;
    lstm.BackwardSeq(caches, d_h_mat, &d_x_seq);
    const auto seq = GradSnapshot(reg);

    for (size_t k = 0; k < ref.size(); ++k) {
      EXPECT_TRUE(BitIdentical(ref[k], seq[k], reg.params()[k]->name.c_str()))
          << "shape (" << s.input << "," << s.hidden << "," << s.steps << ")";
    }
    ASSERT_EQ(d_x_seq.rows(), s.steps);
    for (size_t t = 0; t < s.steps; ++t) {
      for (size_t i = 0; i < s.input; ++i) {
        ASSERT_EQ(d_x_ref[t][i], d_x_seq(t, i))
            << "d_x mismatch at t=" << t << " i=" << i;
      }
    }
  }
}

TEST(NnBpttTest, GruBackwardSeqBitIdenticalToPerStep) {
  for (const Shape& s : kShapes) {
    Rng rng(211 + s.input + s.hidden + s.steps);
    Gru gru("t", s.input, s.hidden, &rng);
    ParameterRegistry reg;
    gru.RegisterParams(&reg);
    const auto xs = RandomInputs(s.steps, s.input, &rng);
    const auto caches = gru.Forward(Pointers(xs));

    std::vector<Vec> d_h_vec(s.steps, Vec(s.hidden));
    Matrix d_h_mat(s.steps, s.hidden);
    for (size_t t = 0; t < s.steps; ++t) {
      for (size_t i = 0; i < s.hidden; ++i) {
        d_h_vec[t][i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
        d_h_mat(t, i) = d_h_vec[t][i];
      }
    }

    reg.ZeroGrad();
    std::vector<Vec> d_x_ref;
    gru.Backward(caches, d_h_vec, &d_x_ref);
    const auto ref = GradSnapshot(reg);

    reg.ZeroGrad();
    Matrix d_x_seq;
    gru.BackwardSeq(caches, d_h_mat, &d_x_seq);
    const auto seq = GradSnapshot(reg);

    for (size_t k = 0; k < ref.size(); ++k) {
      EXPECT_TRUE(BitIdentical(ref[k], seq[k], reg.params()[k]->name.c_str()))
          << "shape (" << s.input << "," << s.hidden << "," << s.steps << ")";
    }
    for (size_t t = 0; t < s.steps; ++t) {
      for (size_t i = 0; i < s.input; ++i) {
        ASSERT_EQ(d_x_ref[t][i], d_x_seq(t, i));
      }
    }
  }
}

TEST(NnBpttTest, StackedBackwardSeqBitIdenticalAcrossDepthsAndKinds) {
  for (RnnKind kind : {RnnKind::kLstm, RnnKind::kGru}) {
    for (size_t layers : {size_t{1}, size_t{2}, size_t{3}}) {
      Rng rng(331 + layers + static_cast<size_t>(kind));
      StackedRnn net(kind, "t", 9, 11, layers, &rng);
      ParameterRegistry reg;
      net.RegisterParams(&reg);
      const size_t steps = 17;
      const auto xs = RandomInputs(steps, 9, &rng);
      const auto cache = net.Forward(Pointers(xs));

      std::vector<Vec> d_h_vec(steps, Vec(11));
      Matrix d_h_mat(steps, 11);
      for (size_t t = 0; t < steps; ++t) {
        for (size_t i = 0; i < 11u; ++i) {
          d_h_vec[t][i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
          d_h_mat(t, i) = d_h_vec[t][i];
        }
      }

      reg.ZeroGrad();
      std::vector<Vec> d_x_ref;
      net.Backward(*cache, d_h_vec, &d_x_ref);
      const auto ref = GradSnapshot(reg);

      reg.ZeroGrad();
      Matrix d_x_seq;
      net.BackwardSeq(*cache, d_h_mat, &d_x_seq);
      const auto seq = GradSnapshot(reg);

      for (size_t k = 0; k < ref.size(); ++k) {
        EXPECT_TRUE(
            BitIdentical(ref[k], seq[k], reg.params()[k]->name.c_str()))
            << RnnKindName(kind) << " layers=" << layers;
      }
      for (size_t t = 0; t < steps; ++t) {
        for (size_t i = 0; i < 9u; ++i) {
          ASSERT_EQ(d_x_ref[t][i], d_x_seq(t, i));
        }
      }
    }
  }
}

TEST(NnBpttTest, LinearBackwardSeqBitIdenticalToPerStep) {
  for (const auto& [in, out, steps] :
       {std::tuple<size_t, size_t, size_t>{5, 2, 1},
        {40, 2, 33},
        {13, 7, 21}}) {
    Rng rng(443 + in + out + steps);
    Linear lin("t", in, out, &rng);
    ParameterRegistry reg;
    lin.RegisterParams(&reg);
    Matrix x_seq(steps, in);
    Matrix d_out_seq(steps, out);
    for (size_t i = 0; i < x_seq.size(); ++i) {
      x_seq.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
    for (size_t i = 0; i < d_out_seq.size(); ++i) {
      d_out_seq.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }

    reg.ZeroGrad();
    Matrix d_x_ref(steps, in, 0.0f);
    for (size_t t = 0; t < steps; ++t) {
      lin.Backward(x_seq.Row(t), d_out_seq.Row(t), d_x_ref.Row(t));
    }
    const auto ref = GradSnapshot(reg);

    reg.ZeroGrad();
    Matrix d_x_seq;
    lin.BackwardSeq(x_seq, d_out_seq, &d_x_seq);
    const auto seq = GradSnapshot(reg);

    for (size_t k = 0; k < ref.size(); ++k) {
      EXPECT_TRUE(BitIdentical(ref[k], seq[k], reg.params()[k]->name.c_str()));
    }
    EXPECT_TRUE(BitIdentical(d_x_ref, d_x_seq, "d_x"));
  }
}

TEST(NnBpttTest, GradientSinkRoutesBitIdenticalGradients) {
  // BackwardSeq(sink) + AddToParams must equal BackwardSeq(direct): sink
  // buffers start zeroed, and folding adds each element once into a zeroed
  // registry gradient.
  Rng rng(557);
  StackedRnn net(RnnKind::kLstm, "t", 6, 10, 2, &rng);
  ParameterRegistry reg;
  net.RegisterParams(&reg);
  const size_t steps = 23;
  const auto xs = RandomInputs(steps, 6, &rng);
  const auto cache = net.Forward(Pointers(xs));
  Matrix d_h(steps, 10);
  for (size_t i = 0; i < d_h.size(); ++i) {
    d_h.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }

  reg.ZeroGrad();
  Matrix d_x_direct;
  net.BackwardSeq(*cache, d_h, &d_x_direct);
  const auto direct = GradSnapshot(reg);

  reg.ZeroGrad();
  GradientSink sink(reg);
  Matrix d_x_sink;
  net.BackwardSeq(*cache, d_h, &d_x_sink, &sink);
  // Nothing may have touched the registry gradients yet.
  for (const Parameter* p : reg.params()) {
    for (size_t i = 0; i < p->grad.size(); ++i) {
      ASSERT_EQ(p->grad.data()[i], 0.0f) << p->name << " written directly";
    }
  }
  sink.AddToParams();
  const auto routed = GradSnapshot(reg);

  for (size_t k = 0; k < direct.size(); ++k) {
    EXPECT_TRUE(
        BitIdentical(direct[k], routed[k], reg.params()[k]->name.c_str()));
  }
  EXPECT_TRUE(BitIdentical(d_x_direct, d_x_sink, "d_x"));

  // Reset restores the all-zero invariant for reuse.
  sink.Reset();
  net.BackwardSeq(*cache, d_h, &d_x_sink, &sink);
  reg.ZeroGrad();
  sink.AddToParams();
  const auto reused = GradSnapshot(reg);
  for (size_t k = 0; k < direct.size(); ++k) {
    EXPECT_TRUE(
        BitIdentical(direct[k], reused[k], reg.params()[k]->name.c_str()));
  }
}

}  // namespace
}  // namespace rl4oasd::nn
