// Neural-network substrate tests, including finite-difference gradient
// checks for the Linear and LSTM layers (the correctness anchor for all
// training in the repo) and convergence tests for Adam.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/tensor.h"

namespace rl4oasd::nn {
namespace {

TEST(TensorTest, MatVec) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  const float x[3] = {1, 0, -1};
  float y[2];
  MatVec(m, x, y);
  EXPECT_FLOAT_EQ(y[0], -2.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
}

TEST(TensorTest, MatTransVecAccum) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const float g[2] = {1, 1};
  float y[2] = {0, 0};
  MatTransVecAccum(m, g, y);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
}

TEST(TensorTest, OuterAccum) {
  Matrix m(2, 2);
  const float g[2] = {1, 2};
  const float x[2] = {3, 4};
  OuterAccum(&m, g, x);
  EXPECT_FLOAT_EQ(m(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 6.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 8.0f);
}

TEST(TensorTest, SoftmaxNormalizes) {
  float logits[3] = {1.0f, 2.0f, 3.0f};
  SoftmaxInPlace(logits, 3);
  EXPECT_NEAR(logits[0] + logits[1] + logits[2], 1.0f, 1e-6f);
  EXPECT_GT(logits[2], logits[1]);
  EXPECT_GT(logits[1], logits[0]);
}

TEST(TensorTest, SoftmaxStableWithLargeLogits) {
  float logits[2] = {1000.0f, 1001.0f};
  SoftmaxInPlace(logits, 2);
  EXPECT_FALSE(std::isnan(logits[0]));
  EXPECT_NEAR(logits[0] + logits[1], 1.0f, 1e-6f);
}

TEST(TensorTest, CosineSimilarity) {
  const float a[2] = {1, 0};
  const float b[2] = {0, 1};
  const float c[2] = {2, 0};
  const float z[2] = {0, 0};
  EXPECT_NEAR(CosineSimilarity(a, b, 2), 0.0f, 1e-6f);
  EXPECT_NEAR(CosineSimilarity(a, c, 2), 1.0f, 1e-6f);
  EXPECT_FLOAT_EQ(CosineSimilarity(a, z, 2), 0.0f);
}

TEST(TensorTest, CrossEntropyOfPerfectPrediction) {
  const float probs[2] = {0.0f, 1.0f};
  EXPECT_NEAR(CrossEntropy(probs, 2, 1), 0.0f, 1e-5f);
  EXPECT_GT(CrossEntropy(probs, 2, 0), 10.0f);  // clamped, not inf
}

TEST(ParamTest, XavierInitWithinLimit) {
  Rng rng(3);
  Parameter p("w", 10, 20);
  p.XavierInit(&rng);
  const float limit = std::sqrt(6.0f / 30.0f);
  for (size_t i = 0; i < p.value.size(); ++i) {
    EXPECT_LE(std::abs(p.value.data()[i]), limit);
  }
}

TEST(ParamTest, ClipGradNorm) {
  Parameter p("w", 1, 4);
  for (size_t i = 0; i < 4; ++i) p.grad.data()[i] = 10.0f;
  ParameterRegistry reg;
  reg.Register(&p);
  const float pre = reg.ClipGradNorm(1.0f);
  EXPECT_NEAR(pre, 20.0f, 1e-4f);
  float norm = 0.0f;
  for (size_t i = 0; i < 4; ++i) norm += p.grad.data()[i] * p.grad.data()[i];
  EXPECT_NEAR(std::sqrt(norm), 1.0f, 1e-5f);
}

// ---- Finite-difference gradient check helpers.

constexpr float kFdEps = 1e-2f;
constexpr float kFdTol = 2e-2f;  // relative tolerance for float32 FD

// Loss used in the checks: L = sum_i target_i * out_i (linear in outputs, so
// d_out = target).
TEST(LinearGradientCheck, WeightsAndInput) {
  Rng rng(5);
  Linear lin("l", 4, 3, &rng);
  float x[4], d_out[3];
  for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : d_out) v = static_cast<float>(rng.Uniform(-1, 1));

  auto loss = [&]() {
    float out[3];
    lin.Forward(x, out);
    return Dot(out, d_out, 3);
  };

  // Analytic gradients.
  lin.weight()->ZeroGrad();
  lin.bias()->ZeroGrad();
  float d_x[4] = {0, 0, 0, 0};
  lin.Backward(x, d_out, d_x);

  // FD on a few weight entries.
  for (size_t k : {size_t{0}, size_t{5}, size_t{11}}) {
    float* w = lin.weight()->value.data();
    const float orig = w[k];
    w[k] = orig + kFdEps;
    const float up = loss();
    w[k] = orig - kFdEps;
    const float down = loss();
    w[k] = orig;
    const float fd = (up - down) / (2 * kFdEps);
    EXPECT_NEAR(lin.weight()->grad.data()[k], fd,
                kFdTol * std::max(1.0f, std::abs(fd)));
  }
  // FD on input.
  for (int k = 0; k < 4; ++k) {
    const float orig = x[k];
    x[k] = orig + kFdEps;
    const float up = loss();
    x[k] = orig - kFdEps;
    const float down = loss();
    x[k] = orig;
    const float fd = (up - down) / (2 * kFdEps);
    EXPECT_NEAR(d_x[k], fd, kFdTol * std::max(1.0f, std::abs(fd)));
  }
}

TEST(LstmGradientCheck, ParametersAndInputs) {
  Rng rng(9);
  const size_t I = 3, H = 4, T = 5;
  Lstm lstm("g", I, H, &rng);

  std::vector<Vec> xs(T, Vec(I));
  for (auto& x : xs) {
    for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  }
  std::vector<Vec> d_h(T, Vec(H));
  for (auto& d : d_h) {
    for (auto& v : d) v = static_cast<float>(rng.Uniform(-1, 1));
  }

  auto loss = [&]() {
    std::vector<const float*> inputs;
    for (auto& x : xs) inputs.push_back(x.data());
    auto caches = lstm.Forward(inputs);
    float total = 0.0f;
    for (size_t t = 0; t < T; ++t) {
      total += Dot(caches[t].h.data(), d_h[t].data(), H);
    }
    return total;
  };

  ParameterRegistry reg;
  lstm.RegisterParams(&reg);
  reg.ZeroGrad();
  std::vector<const float*> inputs;
  for (auto& x : xs) inputs.push_back(x.data());
  auto caches = lstm.Forward(inputs);
  std::vector<Vec> d_x;
  lstm.Backward(caches, d_h, &d_x);

  // Spot-check several parameter coordinates across all three tensors.
  for (Parameter* p : reg.params()) {
    for (size_t k = 0; k < p->value.size(); k += p->value.size() / 5 + 1) {
      float* w = p->value.data();
      const float orig = w[k];
      w[k] = orig + kFdEps;
      const float up = loss();
      w[k] = orig - kFdEps;
      const float down = loss();
      w[k] = orig;
      const float fd = (up - down) / (2 * kFdEps);
      EXPECT_NEAR(p->grad.data()[k], fd,
                  kFdTol * std::max(1.0f, std::abs(fd)))
          << p->name << "[" << k << "]";
    }
  }
  // And the input gradient at t = 1.
  for (size_t k = 0; k < I; ++k) {
    const float orig = xs[1][k];
    xs[1][k] = orig + kFdEps;
    const float up = loss();
    xs[1][k] = orig - kFdEps;
    const float down = loss();
    xs[1][k] = orig;
    const float fd = (up - down) / (2 * kFdEps);
    EXPECT_NEAR(d_x[1][k], fd, kFdTol * std::max(1.0f, std::abs(fd)));
  }
}

TEST(LstmTest, StreamingMatchesSequenceForward) {
  Rng rng(21);
  const size_t I = 4, H = 6, T = 7;
  Lstm lstm("s", I, H, &rng);
  std::vector<Vec> xs(T, Vec(I));
  for (auto& x : xs) {
    for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  }
  std::vector<const float*> inputs;
  for (auto& x : xs) inputs.push_back(x.data());
  auto caches = lstm.Forward(inputs);

  LstmState state(H);
  for (size_t t = 0; t < T; ++t) {
    lstm.StepForward(xs[t].data(), &state);
    for (size_t i = 0; i < H; ++i) {
      EXPECT_NEAR(state.h[i], caches[t].h[i], 1e-5f) << "t=" << t;
    }
  }
}

TEST(LstmTest, ForgetBiasInitializedToOne) {
  Rng rng(1);
  Lstm lstm("b", 2, 3, &rng);
  // Indirect check: zero input and zero hidden should still partially retain
  // cell state thanks to the positive forget bias. Feed a nonzero then zero.
  LstmState state(3);
  const float x1[2] = {1.0f, -1.0f};
  const float x0[2] = {0.0f, 0.0f};
  lstm.StepForward(x1, &state);
  Vec c_after_first = state.c;
  lstm.StepForward(x0, &state);
  // With forget bias 1, sigmoid(1) ~ 0.73 of the cell is retained.
  for (size_t i = 0; i < 3; ++i) {
    if (std::abs(c_after_first[i]) > 1e-3f) {
      EXPECT_GT(std::abs(state.c[i]), 0.3f * std::abs(c_after_first[i]));
    }
  }
}

TEST(EmbeddingTest, LookupAndGrad) {
  Rng rng(2);
  Embedding emb("e", 10, 4, &rng);
  EXPECT_EQ(emb.vocab(), 10u);
  EXPECT_EQ(emb.dim(), 4u);
  const float g[4] = {1, 2, 3, 4};
  emb.AccumulateGrad(3, g);
  emb.AccumulateGrad(3, g);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(emb.param()->grad(3, i), 2.0f * g[i]);
    EXPECT_FLOAT_EQ(emb.param()->grad(0, i), 0.0f);
  }
}

TEST(EmbeddingTest, SetRowOverwrites) {
  Rng rng(2);
  Embedding emb("e", 4, 3, &rng);
  const float v[3] = {9, 8, 7};
  emb.SetRow(2, v);
  EXPECT_FLOAT_EQ(emb.Lookup(2)[0], 9.0f);
  EXPECT_FLOAT_EQ(emb.Lookup(2)[2], 7.0f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize f(w) = 0.5 * ||w - target||^2.
  Parameter w("w", 1, 8);
  Rng rng(4);
  w.UniformInit(&rng, 1.0f);
  float target[8];
  for (auto& t : target) t = static_cast<float>(rng.Uniform(-2, 2));
  ParameterRegistry reg;
  reg.Register(&w);
  AdamConfig cfg;
  cfg.lr = 0.05f;
  AdamOptimizer opt(&reg, cfg);
  for (int step = 0; step < 500; ++step) {
    reg.ZeroGrad();
    for (size_t i = 0; i < 8; ++i) {
      w.grad.data()[i] = w.value.data()[i] - target[i];
    }
    opt.Step();
  }
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(w.value.data()[i], target[i], 1e-2f);
  }
}

TEST(SgdTest, StepsDownhill) {
  Parameter w("w", 1, 2);
  w.value(0, 0) = 1.0f;
  w.value(0, 1) = -1.0f;
  ParameterRegistry reg;
  reg.Register(&w);
  SgdOptimizer opt(&reg, 0.1f);
  w.grad(0, 0) = 1.0f;
  w.grad(0, 1) = -1.0f;
  opt.Step();
  EXPECT_FLOAT_EQ(w.value(0, 0), 0.9f);
  EXPECT_FLOAT_EQ(w.value(0, 1), -0.9f);
}

TEST(AdamTest, LearningRateMutable) {
  Parameter w("w", 1, 1);
  ParameterRegistry reg;
  reg.Register(&w);
  AdamOptimizer opt(&reg, {});
  opt.set_lr(0.5f);
  EXPECT_FLOAT_EQ(opt.lr(), 0.5f);
}

}  // namespace
}  // namespace rl4oasd::nn
