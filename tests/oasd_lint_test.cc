// Per-rule unit tests for the repo-invariant linter (tools/lint). Each rule
// gets a violating snippet, a clean snippet, and an escape-hatch snippet;
// plus tests for the comment/string stripper and the per-directory policy.
#include "lint/lint_engine.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace rl4oasd::lint {
namespace {

std::vector<Finding> Lint(const std::string& path, const std::string& content,
                          const std::vector<std::string>& rules) {
  return LintFileWithRules(FileSpec{path, content}, rules);
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&rule](const Finding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------------------
// raw-mutex

TEST(OasdLintTest, RawMutexFlagsStdMutexMembersAndGuards) {
  const std::string code =
      "#include <mutex>\n"
      "std::mutex mu;\n"
      "void f() { std::lock_guard<std::mutex> lock(mu); }\n"
      "std::condition_variable cv;\n"
      "std::unique_lock<std::mutex> ul;\n";
  const auto findings = Lint("src/serve/x.cc", code, {"raw-mutex"});
  ASSERT_EQ(findings.size(), 5u);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "raw-mutex");
  EXPECT_EQ(findings[0].line, 1);  // the include itself
  EXPECT_EQ(findings[1].line, 2);
}

TEST(OasdLintTest, RawMutexAllowsOnceFlagAndCommonWrappers) {
  const std::string code =
      "#include \"common/mutex.h\"\n"
      "std::once_flag once;\n"
      "void f() { std::call_once(once, [] {}); }\n"
      "common::Mutex mu;\n"
      "void g() { common::MutexLock lock(&mu); }\n";
  EXPECT_TRUE(Lint("src/serve/x.cc", code, {"raw-mutex"}).empty());
}

TEST(OasdLintTest, RawMutexLineEscapeHatch) {
  const std::string code =
      "#include <mutex>  // oasd-lint: allow(raw-mutex) — once_flag only\n"
      "std::mutex mu;\n";
  const auto findings = Lint("src/serve/x.cc", code, {"raw-mutex"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);  // line 1 suppressed, line 2 still flagged
}

// ---------------------------------------------------------------------------
// clock

TEST(OasdLintTest, ClockFlagsChronoAndSleeps) {
  const std::string code =
      "#include <chrono>\n"
      "auto t = std::chrono::steady_clock::now();\n"
      "void f() { std::this_thread::sleep_for(d); }\n";
  const auto findings = Lint("src/core/x.cc", code, {"clock"});
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_TRUE(HasRule(findings, "clock"));
}

TEST(OasdLintTest, ClockFileEscapeHatchSuppressesWholeFile) {
  const std::string code =
      "// oasd-lint: allow-file(clock) — blessed timing wrapper\n"
      "#include <chrono>\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(Lint("src/common/stopwatch.h", code, {"clock"}).empty());
}

TEST(OasdLintTest, ClockDoesNotFlagYield) {
  // Points-denominated spinning via yield() is legal; only time-based
  // waiting is banned.
  const std::string code = "void f() { std::this_thread::yield(); }\n";
  EXPECT_TRUE(Lint("src/core/x.cc", code, {"clock"}).empty());
}

// ---------------------------------------------------------------------------
// randomness

TEST(OasdLintTest, RandomnessFlagsStdEnginesAndRand) {
  const std::string code =
      "#include <random>\n"
      "std::mt19937 gen(std::random_device{}());\n"
      "int x = rand();\n"
      "void f() { srand(42); }\n";
  const auto findings = Lint("src/traj/x.cc", code, {"randomness"});
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_TRUE(HasRule(findings, "randomness"));
}

TEST(OasdLintTest, RandomnessDoesNotFlagSeededRngOrSimilarNames) {
  const std::string code =
      "#include \"common/rng.h\"\n"
      "Rng rng(42);\n"
      "double v = rng.Uniform();\n"
      "int operand(int a);\n"  // 'rand(' must not match inside 'operand('
      "int strand(int a);\n";
  EXPECT_TRUE(Lint("src/traj/x.cc", code, {"randomness"}).empty());
}

// ---------------------------------------------------------------------------
// iostream

TEST(OasdLintTest, IostreamFlagsGlobalStreams) {
  const std::string code =
      "#include <iostream>\n"
      "void f() { std::cout << 1; std::cerr << 2; }\n";
  const auto findings = Lint("src/eval/x.cc", code, {"iostream"});
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(HasRule(findings, "iostream"));
}

TEST(OasdLintTest, IostreamDoesNotFlagOstreamParameters) {
  const std::string code =
      "#include <ostream>\n"
      "void Dump(std::ostream& out) { out << 1; }\n";
  EXPECT_TRUE(Lint("src/eval/x.cc", code, {"iostream"}).empty());
}

// ---------------------------------------------------------------------------
// pragma-once

TEST(OasdLintTest, PragmaOnceRequiredInHeaders) {
  const auto findings =
      Lint("src/core/x.h", "int f();\n", {"pragma-once"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "pragma-once");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(OasdLintTest, PragmaOncePassesWithGuardAndIgnoresNonHeaders) {
  EXPECT_TRUE(Lint("src/core/x.h", "// doc\n#pragma once\nint f();\n",
                   {"pragma-once"})
                  .empty());
  EXPECT_TRUE(Lint("src/core/x.cc", "int f() { return 1; }\n",
                   {"pragma-once"})
                  .empty());
}

// ---------------------------------------------------------------------------
// tsa-optout

TEST(OasdLintTest, TsaOptOutRequiresRationaleComment) {
  const std::string bare =
      "void f() RL4OASD_NO_THREAD_SAFETY_ANALYSIS {}\n";
  const auto findings = Lint("src/serve/x.cc", bare, {"tsa-optout"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "tsa-optout");

  const std::string justified =
      "// Analysis opt-out rationale: dynamic capability set, see checker.\n"
      "void f() RL4OASD_NO_THREAD_SAFETY_ANALYSIS {}\n";
  EXPECT_TRUE(Lint("src/serve/x.cc", justified, {"tsa-optout"}).empty());
}

// ---------------------------------------------------------------------------
// comment/string stripping

TEST(OasdLintTest, TokensInCommentsAndStringsDoNotCount) {
  const std::string code =
      "// std::mutex in a comment\n"
      "/* std::chrono in a block\n"
      "   comment spanning lines */\n"
      "const char* s = \"std::cout inside a string\";\n"
      "char q = 'x';\n";
  EXPECT_TRUE(Lint("src/core/x.cc", code,
                   {"raw-mutex", "clock", "iostream"})
                  .empty());
}

TEST(OasdLintTest, StripPreservesLineNumbers) {
  const std::string code = "int a;\n/* c1\nc2 */ std::mutex mu;\n";
  const auto findings = Lint("src/core/x.cc", code, {"raw-mutex"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(OasdLintTest, EscapedQuoteInStringDoesNotDesync) {
  const std::string code =
      "const char* s = \"a \\\" b std::mutex\";\n"
      "std::mutex mu;\n";
  const auto findings = Lint("src/core/x.cc", code, {"raw-mutex"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
}

// ---------------------------------------------------------------------------
// lock-rank

TEST(OasdLintTest, LockRankFlagsUnknownRankIdentifiers) {
  const std::string code =
      "#include \"common/mutex.h\"\n"
      "common::Mutex mu{common::lockrank::kFleetSnapshot};\n"
      "common::Mutex mu2{lockrank::kFleetShard};\n";
  const auto findings = Lint("src/serve/x.cc", code, {"lock-rank"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-rank");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("kFleetSnapshot"), std::string::npos);
}

TEST(OasdLintTest, LockRankAllowsEveryTableTier) {
  const std::string code =
      "int ranks[] = {lockrank::kFleetIngest, lockrank::kFleetShard,\n"
      "               lockrank::kFleetTrip, lockrank::kFleetDelivery,\n"
      "               lockrank::kFleetModel, lockrank::kDriftPending,\n"
      "               lockrank::kDriftState, lockrank::kDefault,\n"
      "               lockrank::kLogging};\n";
  EXPECT_TRUE(Lint("src/serve/x.cc", code, {"lock-rank"}).empty());
}

TEST(OasdLintTest, LockRankIgnoresCommentsAndHonorsEscapeHatch) {
  // A rank mentioned in a comment is not a use; an explicit allow() keeps
  // prototype code compiling while the table change is in review.
  const std::string code =
      "// future: lockrank::kFleetFuture below kFleetShard\n"
      "common::Mutex mu{lockrank::kFleetFuture};  "
      "// oasd-lint: allow(lock-rank)\n"
      "common::Mutex mu2{lockrank::kFleetFuture};\n";
  const auto findings = Lint("src/serve/x.cc", code, {"lock-rank"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

// ---------------------------------------------------------------------------
// per-directory policy

TEST(OasdLintTest, PolicyMatchesDirectoryContracts) {
  // src/ outside common: everything applies.
  auto rules = RulesFor("src/serve/fleet.cc");
  EXPECT_TRUE(std::count(rules.begin(), rules.end(), "raw-mutex"));
  EXPECT_TRUE(std::count(rules.begin(), rules.end(), "clock"));
  EXPECT_TRUE(std::count(rules.begin(), rules.end(), "iostream"));

  // src/common: hosts the blessed lock wrappers, raw-mutex off.
  rules = RulesFor("src/common/mutex.h");
  EXPECT_FALSE(std::count(rules.begin(), rules.end(), "raw-mutex"));
  EXPECT_TRUE(std::count(rules.begin(), rules.end(), "clock"));

  // common/rng is the one place allowed to mention std engines.
  rules = RulesFor("src/common/rng.h");
  EXPECT_FALSE(std::count(rules.begin(), rules.end(), "randomness"));

  // tests/: may print and time, but locks still go through common::Mutex
  // and rank names still come from the closed table.
  rules = RulesFor("tests/serve_test.cc");
  EXPECT_TRUE(std::count(rules.begin(), rules.end(), "raw-mutex"));
  EXPECT_TRUE(std::count(rules.begin(), rules.end(), "lock-rank"));
  EXPECT_FALSE(std::count(rules.begin(), rules.end(), "clock"));
  EXPECT_FALSE(std::count(rules.begin(), rules.end(), "iostream"));

  // The queue mutexes' ranks are checked wherever locks are linted.
  EXPECT_TRUE(std::count(rules.begin(), rules.end(), "lock-rank"));
  rules = RulesFor("bench/bench_fleet_soak.cc");
  EXPECT_TRUE(std::count(rules.begin(), rules.end(), "lock-rank"));
  rules = RulesFor("src/serve/ingest_queue.cc");
  EXPECT_TRUE(std::count(rules.begin(), rules.end(), "lock-rank"));

  // Outside the linted trees: nothing applies.
  EXPECT_TRUE(RulesFor("build/generated.cc").empty());
}

TEST(OasdLintTest, LintFileAppliesPolicy) {
  // The same content is a violation in src/ and clean in tests/.
  const std::string code = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_FALSE(LintFile(FileSpec{"src/core/x.cc", code}).empty());
  EXPECT_TRUE(LintFile(FileSpec{"tests/x_test.cc", code}).empty());
}

}  // namespace
}  // namespace rl4oasd::lint
