// Property-based tests for the baseline detectors, swept over generator
// seeds: structural output invariants shared by every detector, and
// method-specific semantics (CTSS Fréchet deviation, IBOAT window support,
// transition-frequency/preprocessor agreement).
#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/ctss.h"
#include "baselines/dbtod.h"
#include "baselines/iboat.h"
#include "baselines/seq_vae.h"
#include "baselines/transition_frequency.h"
#include "core/preprocess.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace rl4oasd::baselines {
namespace {

/// All baselines share these structural requirements.
class BaselineContractTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  BaselineContractTest()
      : net_(rl4oasd::testing::SmallGrid()),
        dataset_(
            rl4oasd::testing::SmallDataset(net_, 4, 0.1, GetParam())) {}

  std::vector<std::unique_ptr<SubtrajectoryDetector>> MakeAll() {
    std::vector<std::unique_ptr<SubtrajectoryDetector>> out;
    out.push_back(std::make_unique<IboatDetector>());
    out.push_back(std::make_unique<DbtodDetector>(&net_));
    out.push_back(std::make_unique<CtssDetector>(&net_));
    out.push_back(std::make_unique<TransitionFrequencyDetector>());
    SeqVaeConfig vae;
    vae.epochs = 1;
    vae.max_train_trajs = 150;
    out.push_back(std::make_unique<SeqVaeDetector>(&net_, vae));
    return out;
  }

  roadnet::RoadNetwork net_;
  traj::Dataset dataset_;
};

TEST_P(BaselineContractTest, LabelsAlignedBinaryAndEndpointNormal) {
  for (auto& detector : MakeAll()) {
    detector->Fit(dataset_);
    for (size_t i = 0; i < std::min<size_t>(dataset_.size(), 40); ++i) {
      const auto& t = dataset_[i].traj;
      const auto labels = detector->Detect(t);
      ASSERT_EQ(labels.size(), t.edges.size()) << detector->name();
      for (uint8_t l : labels) {
        ASSERT_LE(l, 1) << detector->name();
      }
      // The problem definition makes source and destination normal.
      EXPECT_EQ(labels.front(), 0) << detector->name();
      EXPECT_EQ(labels.back(), 0) << detector->name();
    }
  }
}

TEST_P(BaselineContractTest, DetectionIsDeterministic) {
  for (auto& detector : MakeAll()) {
    detector->Fit(dataset_);
    const auto& t = dataset_[GetParam() % dataset_.size()].traj;
    EXPECT_EQ(detector->Detect(t), detector->Detect(t)) << detector->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineContractTest,
                         ::testing::Values(uint64_t{3}, uint64_t{19}));

// ---------------------------------------------------------------------------
// Method-specific semantics on the Figure 1 worked example.

class BaselineFigure1Test : public ::testing::Test {
 protected:
  BaselineFigure1Test() : ex_(rl4oasd::testing::MakeFigure1Example()) {}

  traj::MapMatchedTrajectory Traj(const std::vector<traj::EdgeId>& edges) {
    traj::MapMatchedTrajectory t;
    t.edges = edges;
    t.start_time = 9 * 3600.0;
    return t;
  }

  rl4oasd::testing::Figure1Example ex_;
};

TEST_F(BaselineFigure1Test, CtssReferenceRouteScoresZero) {
  CtssDetector ctss(&ex_.net);
  ctss.Fit(ex_.dataset);
  // T1 is the most popular route, so it is its own reference: the Fréchet
  // deviation is identically zero along it.
  const auto scores = ctss.Scores(Traj(ex_.t1));
  for (double s : scores) {
    EXPECT_NEAR(s, 0.0, 1e-9);
  }
}

TEST_F(BaselineFigure1Test, CtssDetourScoresGrowAndExceedOnRouteScores) {
  CtssDetector ctss(&ex_.net);
  ctss.Fit(ex_.dataset);
  const auto detour_scores = ctss.Scores(Traj(ex_.t3));
  const auto normal_scores = ctss.Scores(Traj(ex_.t2));
  // The detour's peak deviation dominates the alternative normal route's.
  const double peak_detour =
      *std::max_element(detour_scores.begin(), detour_scores.end());
  const double peak_normal =
      *std::max_element(normal_scores.begin(), normal_scores.end());
  EXPECT_GT(peak_detour, peak_normal);
  // Fréchet deviation is non-decreasing while the vehicle stays off the
  // reference (monotone DP over prefixes): the max over the detour interior
  // is reached inside or after the splice, not before it.
  EXPECT_GT(peak_detour, detour_scores[1]);
}

TEST_F(BaselineFigure1Test, IboatFlagsTheDetourInterior) {
  IboatDetector iboat(0.15);
  iboat.Fit(ex_.dataset);
  const auto labels = iboat.Detect(Traj(ex_.t3));
  // The window support collapses when T3 leaves the shared prefix at e11
  // (paper's worked example: only 1 of 10 trajectories contains those
  // transitions).
  int flagged = 0;
  for (size_t i = 3; i <= 7; ++i) flagged += labels[i];
  EXPECT_GE(flagged, 3) << "detour interior mostly flagged";
  // The shared prefix (e1, e2, e4 — supported by T2's 4 trips + T3) stays
  // normal.
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 0);
}

TEST_F(BaselineFigure1Test, IboatNormalRoutesStayClean) {
  IboatDetector iboat(0.15);
  iboat.Fit(ex_.dataset);
  for (const auto& route : {ex_.t1, ex_.t2}) {
    const auto labels = iboat.Detect(Traj(route));
    for (size_t i = 0; i < labels.size(); ++i) {
      EXPECT_EQ(labels[i], 0) << "position " << i;
    }
  }
}

TEST_F(BaselineFigure1Test, TransitionFrequencyMatchesPreprocessor) {
  // The simplest baseline must agree with the preprocessor's fractions: its
  // score is exactly 1 - transition fraction.
  TransitionFrequencyDetector tf;
  tf.Fit(ex_.dataset);
  core::Preprocessor pre;
  pre.Fit(ex_.dataset);

  const auto t3 = Traj(ex_.t3);
  const auto scores = tf.Scores(t3);
  const auto fractions = pre.TransitionFractions(t3);
  ASSERT_EQ(scores.size(), fractions.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_NEAR(scores[i], 1.0 - fractions[i], 1e-9) << "position " << i;
  }
}

TEST_F(BaselineFigure1Test, ScoreThresholdSemantics) {
  TransitionFrequencyDetector tf;
  tf.Fit(ex_.dataset);
  const auto t3 = Traj(ex_.t3);
  const auto scores = tf.Scores(t3);

  // Threshold above every score: nothing flagged.
  tf.set_threshold(2.0);
  auto labels = tf.Detect(t3);
  for (uint8_t l : labels) EXPECT_EQ(l, 0);

  // Threshold below the detour scores: interior flagged, endpoints forced
  // normal regardless.
  tf.set_threshold(0.5);
  labels = tf.Detect(t3);
  EXPECT_EQ(labels.front(), 0);
  EXPECT_EQ(labels.back(), 0);
  int flagged = 0;
  for (size_t i = 1; i + 1 < labels.size(); ++i) {
    flagged += labels[i];
    EXPECT_EQ(labels[i], scores[i] > 0.5 ? 1 : 0);
  }
  EXPECT_GT(flagged, 0);
}

TEST_F(BaselineFigure1Test, TuneImprovesOrMaintainsDevF1) {
  // Tuning on a labeled dev set must never leave the detector worse than
  // its starting threshold on that same set.
  for (double start : {0.01, 0.5, 0.99}) {
    TransitionFrequencyDetector tf;
    tf.Fit(ex_.dataset);
    tf.set_threshold(start);
    eval::F1Evaluator before_eval;
    for (const auto& lt : ex_.dataset.trajs()) {
      before_eval.Add(lt.labels, tf.Detect(lt.traj));
    }
    const double before = before_eval.Compute().f1;

    tf.Tune(ex_.dataset);
    eval::F1Evaluator after_eval;
    for (const auto& lt : ex_.dataset.trajs()) {
      after_eval.Add(lt.labels, tf.Detect(lt.traj));
    }
    EXPECT_GE(after_eval.Compute().f1 + 1e-9, before)
        << "starting threshold " << start;
  }
}

}  // namespace
}  // namespace rl4oasd::baselines
