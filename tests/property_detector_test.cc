// Property-based tests for the detector's post-processing primitives:
// Delayed Labeling (DL) and Road Network Enhanced Labeling (RNEL), swept
// over random inputs with parameterized gtest.
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/detector.h"
#include "test_util.h"
#include "traj/types.h"

namespace rl4oasd::core {
namespace {

std::vector<uint8_t> RandomLabels(Rng* rng, size_t n, double p_one) {
  std::vector<uint8_t> l(n);
  for (auto& v : l) v = rng->Bernoulli(p_one) ? 1 : 0;
  return l;
}

// ---------------------------------------------------------------------------
// Delayed Labeling properties. Parameter: (seed, D).

class DelayedLabelingProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(DelayedLabelingProperty, Idempotent) {
  auto [seed, d] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 50; ++trial) {
    auto labels = RandomLabels(&rng, 1 + rng.UniformInt(uint64_t{60}), 0.3);
    auto once = labels;
    ApplyDelayedLabeling(&once, d);
    auto twice = once;
    ApplyDelayedLabeling(&twice, d);
    EXPECT_EQ(once, twice);
  }
}

TEST_P(DelayedLabelingProperty, NeverClearsAnAnomalousLabel) {
  auto [seed, d] = GetParam();
  Rng rng(seed ^ 0x9E3779B9u);
  for (int trial = 0; trial < 50; ++trial) {
    const auto before = RandomLabels(&rng, 1 + rng.UniformInt(uint64_t{60}), 0.4);
    auto after = before;
    ApplyDelayedLabeling(&after, d);
    ASSERT_EQ(after.size(), before.size());
    for (size_t i = 0; i < before.size(); ++i) {
      if (before[i] == 1) {
        EXPECT_EQ(after[i], 1) << "position " << i;
      }
    }
  }
}

TEST_P(DelayedLabelingProperty, ClosesEveryShortInteriorGap) {
  auto [seed, d] = GetParam();
  Rng rng(seed ^ 0xABCDu);
  for (int trial = 0; trial < 50; ++trial) {
    auto labels = RandomLabels(&rng, 1 + rng.UniformInt(uint64_t{60}), 0.35);
    ApplyDelayedLabeling(&labels, d);
    // Invariant: no maximal 0-run strictly between two 1s has length <= D
    // (the lookahead scans D segments past a boundary, so a gap of exactly
    // D merges).
    const int n = static_cast<int>(labels.size());
    for (int i = 0; i < n; ++i) {
      if (labels[i] != 0) continue;
      int j = i;
      while (j < n && labels[j] == 0) ++j;
      const bool interior = i > 0 && j < n;  // 1s on both sides
      if (interior && d >= 1) {
        EXPECT_GT(j - i, d) << "gap [" << i << "," << j << ") survived DL";
      }
      i = j;
    }
  }
}

TEST_P(DelayedLabelingProperty, OnlyTouchesInteriorGaps) {
  auto [seed, d] = GetParam();
  Rng rng(seed ^ 0x1234u);
  for (int trial = 0; trial < 50; ++trial) {
    const auto before = RandomLabels(&rng, 1 + rng.UniformInt(uint64_t{60}), 0.3);
    auto after = before;
    ApplyDelayedLabeling(&after, d);
    // A position flipped 0 -> 1 must have a 1 somewhere before AND after it
    // in the original sequence (DL merges runs; it never extends outward).
    for (size_t i = 0; i < before.size(); ++i) {
      if (before[i] == 0 && after[i] == 1) {
        bool one_before = false, one_after = false;
        for (size_t k = 0; k < i; ++k) one_before |= before[k] == 1;
        for (size_t k = i + 1; k < before.size(); ++k) {
          one_after |= before[k] == 1;
        }
        EXPECT_TRUE(one_before && one_after) << "position " << i;
      }
    }
  }
}

TEST(DelayedLabelingEdgeCases, ZeroAndNegativeDAreNoOps) {
  std::vector<uint8_t> l = {1, 0, 1, 0, 0, 1};
  auto copy = l;
  ApplyDelayedLabeling(&copy, 0);
  EXPECT_EQ(copy, l);
  ApplyDelayedLabeling(&copy, -3);
  EXPECT_EQ(copy, l);
}

TEST(DelayedLabelingEdgeCases, EmptyAndSingleton) {
  std::vector<uint8_t> empty;
  ApplyDelayedLabeling(&empty, 4);
  EXPECT_TRUE(empty.empty());
  std::vector<uint8_t> one = {1};
  ApplyDelayedLabeling(&one, 4);
  EXPECT_EQ(one, (std::vector<uint8_t>{1}));
}

TEST(DelayedLabelingEdgeCases, MergesDocumentedExample) {
  // 1 0 0 1 with D=3: the 2-gap closes.
  std::vector<uint8_t> l = {1, 0, 0, 1};
  ApplyDelayedLabeling(&l, 3);
  EXPECT_EQ(l, (std::vector<uint8_t>{1, 1, 1, 1}));
  // With D=2 the gap of exactly D also closes (the lookahead scans D
  // segments past the boundary).
  std::vector<uint8_t> m = {1, 0, 0, 1};
  ApplyDelayedLabeling(&m, 2);
  EXPECT_EQ(m, (std::vector<uint8_t>{1, 1, 1, 1}));
  // With D=1 the gap (length 2) survives: the lookahead is too short.
  std::vector<uint8_t> s = {1, 0, 0, 1};
  ApplyDelayedLabeling(&s, 1);
  EXPECT_EQ(s, (std::vector<uint8_t>{1, 0, 0, 1}));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DelayedLabelingProperty,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{7},
                                         uint64_t{42}),
                       ::testing::Values(1, 2, 4, 8, 16)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_D" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// RNEL properties over random graphs. Parameter: graph seed.

class RnelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RnelProperty, MatchesPaperRuleTable) {
  auto net = rl4oasd::testing::SmallGrid(GetParam());
  for (size_t e = 0; e < net.NumEdges(); ++e) {
    const auto prev = static_cast<traj::EdgeId>(e);
    for (traj::EdgeId cur : net.NextEdges(prev)) {
      for (int prev_label : {0, 1}) {
        const int got = RnelDeterministicLabel(net, prev, prev_label, cur);
        const int out = net.EdgeOutDegree(prev);
        const int in = net.EdgeInDegree(cur);
        // Paper Section IV-E, cases (1)-(3).
        if (out == 1 && in == 1) {
          EXPECT_EQ(got, prev_label);
        } else if (out == 1 && in > 1 && prev_label == 0) {
          EXPECT_EQ(got, 0);
        } else if (out > 1 && in == 1 && prev_label == 1) {
          EXPECT_EQ(got, 1);
        } else {
          EXPECT_EQ(got, -1) << "policy must decide when no rule applies";
        }
      }
    }
  }
}

TEST_P(RnelProperty, LabelChangeRequiresAlternative) {
  // Contrapositive of the paper's intuition: whenever RNEL *determines* a
  // label that differs from prev_label... it cannot: all three rules output
  // prev_label or a value equal to it under their preconditions. Verify no
  // deterministic output ever flips the label.
  auto net = rl4oasd::testing::SmallGrid(GetParam() + 100);
  for (size_t e = 0; e < net.NumEdges(); ++e) {
    const auto prev = static_cast<traj::EdgeId>(e);
    for (traj::EdgeId cur : net.NextEdges(prev)) {
      for (int prev_label : {0, 1}) {
        const int got = RnelDeterministicLabel(net, prev, prev_label, cur);
        if (got != -1) {
          EXPECT_EQ(got, prev_label)
              << "RNEL flipped a label deterministically";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GraphSeeds, RnelProperty,
                         ::testing::Values(uint64_t{3}, uint64_t{17},
                                           uint64_t{99}));

// ---------------------------------------------------------------------------
// ExtractAnomalousRuns properties.

class RunsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RunsProperty, RunsPartitionTheOnes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const auto labels = RandomLabels(&rng, rng.UniformInt(uint64_t{80}), 0.4);
    const auto runs = traj::ExtractAnomalousRuns(labels);
    // Reconstruct labels from runs; must round-trip exactly.
    std::vector<uint8_t> rebuilt(labels.size(), 0);
    int prev_end = -1;
    for (const auto& r : runs) {
      ASSERT_LT(r.begin, r.end);
      ASSERT_GE(r.begin, 0);
      ASSERT_LE(static_cast<size_t>(r.end), labels.size());
      ASSERT_GT(r.begin, prev_end) << "runs must be disjoint and ordered "
                                      "with a gap between them";
      for (int i = r.begin; i < r.end; ++i) rebuilt[i] = 1;
      prev_end = r.end;
    }
    EXPECT_EQ(rebuilt, labels);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunsProperty,
                         ::testing::Values(uint64_t{5}, uint64_t{25}));

}  // namespace
}  // namespace rl4oasd::core
