// Property-based tests for the GPS-sampling + HMM map-matching pipeline,
// swept over noise levels and seeds: the matcher must recover most of the
// driven edge sequence from noisy fixes, always produce connected output,
// and degrade gracefully (not crash) as noise grows.
#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "mapmatch/hmm_matcher.h"
#include "test_util.h"
#include "traj/gps_sampler.h"

namespace rl4oasd::mapmatch {
namespace {

/// Jaccard similarity between two edge sets (order-insensitive recovery
/// metric; the matched sequence may legitimately differ at boundaries).
double EdgeJaccard(const std::vector<traj::EdgeId>& a,
                   const std::vector<traj::EdgeId>& b) {
  std::unordered_set<traj::EdgeId> sa(a.begin(), a.end());
  std::unordered_set<traj::EdgeId> sb(b.begin(), b.end());
  size_t inter = 0;
  for (traj::EdgeId e : sa) inter += sb.contains(e) ? 1 : 0;
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

class MapMatchProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {
 protected:
  MapMatchProperty() : net_(rl4oasd::testing::SmallGrid()) {}

  roadnet::RoadNetwork net_;
};

TEST_P(MapMatchProperty, RecoversDrivenRouteFromNoisyFixes) {
  auto [seed, noise] = GetParam();
  auto ds = rl4oasd::testing::SmallDataset(net_, 3, 0.0, seed);

  traj::GpsSamplerConfig gps;
  gps.noise_sigma_m = noise;
  traj::GpsSampler sampler(&net_, gps, seed + 1);
  HmmConfig hmm;
  hmm.gps_sigma_m = std::max(10.0, noise * 1.5);
  HmmMapMatcher matcher(&net_, hmm);

  int matched = 0;
  double jaccard_sum = 0.0;
  for (size_t i = 0; i < std::min<size_t>(ds.size(), 25); ++i) {
    const auto& truth = ds[i].traj;
    const traj::RawTrajectory raw = sampler.Sample(truth);
    ASSERT_GE(raw.points.size(), 2u);
    auto result = matcher.Match(raw);
    if (!result.ok()) continue;  // low-noise settings assert below
    ++matched;
    // Structural invariants on every successful match. start_time is the
    // first *matched* fix's timestamp: it must be one of the raw fix times,
    // never earlier than the first fix (leading fixes may be dropped when
    // noise pushes them outside the candidate radius).
    EXPECT_FALSE(result->edges.empty());
    EXPECT_TRUE(net_.IsConnectedPath(result->edges));
    EXPECT_GE(result->start_time, raw.points.front().t);
    const bool is_fix_time =
        std::any_of(raw.points.begin(), raw.points.end(),
                    [&](const traj::RawPoint& p) {
                      return p.t == result->start_time;
                    });
    EXPECT_TRUE(is_fix_time);
    jaccard_sum += EdgeJaccard(truth.edges, result->edges);
  }
  ASSERT_GT(matched, 0);
  const double mean_jaccard = jaccard_sum / matched;
  if (noise <= 15.0) {
    // City-block spacing is ~200 m, so moderate GPS noise must allow a
    // high-fidelity reconstruction.
    EXPECT_GT(mean_jaccard, 0.7) << "noise " << noise;
  } else {
    // Heavy noise: recovery degrades but stays far above chance.
    EXPECT_GT(mean_jaccard, 0.3) << "noise " << noise;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapMatchProperty,
    ::testing::Combine(::testing::Values(uint64_t{21}, uint64_t{77}),
                       ::testing::Values(5.0, 15.0, 35.0)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_noise" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

TEST(MapMatchEdgeCases, AllFixesOffNetworkFails) {
  auto net = rl4oasd::testing::SmallGrid();
  HmmMapMatcher matcher(&net);
  traj::RawTrajectory raw;
  raw.id = 1;
  // Fixes ~100 km away from the city.
  raw.points.push_back({{31.6, 105.0}, 0.0});
  raw.points.push_back({{31.6, 105.001}, 3.0});
  auto result = matcher.Match(raw);
  EXPECT_FALSE(result.ok());
}

TEST(MapMatchEdgeCases, SingleFixProducesSingleEdgeOrFails) {
  auto net = rl4oasd::testing::SmallGrid();
  HmmMapMatcher matcher(&net);
  traj::RawTrajectory raw;
  raw.id = 2;
  raw.points.push_back({net.vertex(0).pos, 0.0});
  auto result = matcher.Match(raw);
  if (result.ok()) {
    EXPECT_EQ(result->edges.size(), 1u);
  }
}

TEST(GpsSamplerProperty, FixTimesAreMonotoneAtPaperRate) {
  auto net = rl4oasd::testing::SmallGrid();
  auto ds = rl4oasd::testing::SmallDataset(net, 2);
  traj::GpsSampler sampler(&net, {}, 5);
  for (size_t i = 0; i < std::min<size_t>(ds.size(), 20); ++i) {
    const traj::RawTrajectory raw = sampler.Sample(ds[i].traj);
    ASSERT_GE(raw.points.size(), 2u);
    EXPECT_EQ(raw.points.front().t, ds[i].traj.start_time);
    for (size_t k = 1; k < raw.points.size(); ++k) {
      const double dt = raw.points[k].t - raw.points[k - 1].t;
      EXPECT_GE(dt, 2.0 - 1e-9);  // paper: 2-4 s sampling
      EXPECT_LE(dt, 4.0 + 1e-9);
    }
  }
}

}  // namespace
}  // namespace rl4oasd::mapmatch
