// Property-based tests for the NER-style subtrajectory metrics (paper
// Section V-A): bounds, degenerate cases, and monotonicity, swept over
// random label sequences.
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"

namespace rl4oasd::eval {
namespace {

std::vector<uint8_t> RandomLabels(Rng* rng, size_t n, double p_one) {
  std::vector<uint8_t> l(n);
  for (auto& v : l) v = rng->Bernoulli(p_one) ? 1 : 0;
  return l;
}

class MetricsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsProperty, ScoresAlwaysInUnitInterval) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    F1Evaluator ev;
    const int trajs = 1 + static_cast<int>(rng.UniformInt(uint64_t{10}));
    for (int t = 0; t < trajs; ++t) {
      const size_t n = 1 + rng.UniformInt(uint64_t{40});
      ev.Add(RandomLabels(&rng, n, 0.3), RandomLabels(&rng, n, 0.3));
    }
    const Scores s = ev.Compute();
    for (double v : {s.precision, s.recall, s.f1, s.tprecision, s.trecall,
                     s.tf1}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST_P(MetricsProperty, PerfectPredictionScoresOne) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int trial = 0; trial < 50; ++trial) {
    F1Evaluator ev;
    bool any_anomaly = false;
    for (int t = 0; t < 5; ++t) {
      const auto gt = RandomLabels(&rng, 1 + rng.UniformInt(uint64_t{40}), 0.4);
      for (uint8_t l : gt) any_anomaly |= l == 1;
      ev.Add(gt, gt);
    }
    if (!any_anomaly) continue;
    const Scores s = ev.Compute();
    EXPECT_DOUBLE_EQ(s.precision, 1.0);
    EXPECT_DOUBLE_EQ(s.recall, 1.0);
    EXPECT_DOUBLE_EQ(s.f1, 1.0);
    EXPECT_DOUBLE_EQ(s.tf1, 1.0);
  }
}

TEST_P(MetricsProperty, AllNormalPredictionHasZeroRecall) {
  Rng rng(GetParam() ^ 0xF00D);
  for (int trial = 0; trial < 50; ++trial) {
    F1Evaluator ev;
    bool any_anomaly = false;
    for (int t = 0; t < 5; ++t) {
      const auto gt = RandomLabels(&rng, 1 + rng.UniformInt(uint64_t{40}), 0.4);
      for (uint8_t l : gt) any_anomaly |= l == 1;
      ev.Add(gt, std::vector<uint8_t>(gt.size(), 0));
    }
    if (!any_anomaly) continue;
    const Scores s = ev.Compute();
    EXPECT_DOUBLE_EQ(s.recall, 0.0);
    EXPECT_DOUBLE_EQ(s.f1, 0.0);
  }
}

TEST_P(MetricsProperty, TF1NeverCountsMoreMatchesThanJaccardSum) {
  // The thresholded Jaccard (0/1 at phi) can only shrink per-anomaly credit
  // when the raw Jaccard is below 1, so tprecision <= 1 and the thresholded
  // match count is bounded by the number of ground-truth runs.
  Rng rng(GetParam() ^ 0xCAFE);
  for (int trial = 0; trial < 50; ++trial) {
    F1Evaluator ev;
    for (int t = 0; t < 8; ++t) {
      const size_t n = 1 + rng.UniformInt(uint64_t{40});
      ev.Add(RandomLabels(&rng, n, 0.35), RandomLabels(&rng, n, 0.35));
    }
    const Scores s = ev.Compute();
    // A detection that clears phi = 0.5 contributes 1 instead of J >= 0.5,
    // so the thresholded scores are at most twice the raw ones.
    EXPECT_LE(s.tprecision, 2.0 * s.precision + 1e-9);
    EXPECT_LE(s.trecall, 2.0 * s.recall + 1e-9);
  }
}

TEST_P(MetricsProperty, PhiOneOnlyCreditsExactMatches) {
  Rng rng(GetParam() ^ 0x7777);
  for (int trial = 0; trial < 30; ++trial) {
    const auto gt = RandomLabels(&rng, 30, 0.4);
    auto pred = gt;
    // Perturb one position: any overlap becomes inexact.
    pred[rng.UniformInt(uint64_t{30})] ^= 1;

    F1Evaluator exact(/*phi=*/0.999999);
    exact.Add(gt, gt);
    const Scores s_same = exact.Compute();
    if (s_same.num_gt_anomalies > 0) {
      EXPECT_DOUBLE_EQ(s_same.tf1, 1.0);
    }
  }
}

TEST_P(MetricsProperty, ResetClearsState) {
  Rng rng(GetParam() ^ 0x5151);
  F1Evaluator ev;
  ev.Add(RandomLabels(&rng, 20, 0.5), RandomLabels(&rng, 20, 0.5));
  ev.Reset();
  const Scores s = ev.Compute();
  EXPECT_EQ(s.num_gt_anomalies, 0);
  EXPECT_EQ(s.num_detected, 0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty,
                         ::testing::Values(uint64_t{2}, uint64_t{13},
                                           uint64_t{71}, uint64_t{2024}));

// ---------------------------------------------------------------------------
// Length groups (Table III's G1..G4).

TEST(LengthGroupTest, PaperBoundaries) {
  // G1 < 15, 15 <= G2 < 30, 30 <= G3 < 45, G4 >= 45.
  EXPECT_EQ(LengthGroupOf(0), 0);
  EXPECT_EQ(LengthGroupOf(14), 0);
  EXPECT_EQ(LengthGroupOf(15), 1);
  EXPECT_EQ(LengthGroupOf(29), 1);
  EXPECT_EQ(LengthGroupOf(30), 2);
  EXPECT_EQ(LengthGroupOf(44), 2);
  EXPECT_EQ(LengthGroupOf(45), 3);
  EXPECT_EQ(LengthGroupOf(1000), 3);
}

TEST(LengthGroupTest, MonotoneNonDecreasing) {
  int prev = 0;
  for (size_t n = 0; n < 100; ++n) {
    const int g = LengthGroupOf(n);
    EXPECT_GE(g, prev);
    EXPECT_LT(g, kNumLengthGroups);
    prev = g;
  }
}

}  // namespace
}  // namespace rl4oasd::eval
