// Property-based tests for the preprocessing component (paper Section IV-B):
// transition-fraction bounds, noisy-label/threshold consistency, incremental
// Update vs batch Fit equivalence, and snapshot round trips — swept over
// generator seeds.
#include <gtest/gtest.h>

#include "core/preprocess.h"
#include "test_util.h"

namespace rl4oasd::core {
namespace {

class PreprocessProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  PreprocessProperty()
      : net_(rl4oasd::testing::SmallGrid()),
        dataset_(rl4oasd::testing::SmallDataset(net_, 4, 0.1, GetParam())) {}

  roadnet::RoadNetwork net_;
  traj::Dataset dataset_;
};

TEST_P(PreprocessProperty, FractionsAreProbabilities) {
  Preprocessor pre;
  pre.Fit(dataset_);
  for (size_t i = 0; i < std::min<size_t>(dataset_.size(), 100); ++i) {
    const auto& t = dataset_[i].traj;
    const auto fractions = pre.TransitionFractions(t);
    ASSERT_EQ(fractions.size(), t.edges.size());
    for (double f : fractions) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0 + 1e-12);
    }
    // Paper Step-3: source and destination fractions are defined to be 1.
    EXPECT_DOUBLE_EQ(fractions.front(), 1.0);
    EXPECT_DOUBLE_EQ(fractions.back(), 1.0);
    // Every observed transition was ingested, so interior fractions of a
    // trajectory that is itself in the corpus are strictly positive.
    for (size_t k = 1; k + 1 < fractions.size(); ++k) {
      EXPECT_GT(fractions[k], 0.0);
    }
  }
}

TEST_P(PreprocessProperty, NoisyLabelsMatchAlphaThreshold) {
  PreprocessConfig cfg;
  cfg.alpha = 0.35;
  Preprocessor pre(cfg);
  pre.Fit(dataset_);
  for (size_t i = 0; i < std::min<size_t>(dataset_.size(), 100); ++i) {
    const auto& t = dataset_[i].traj;
    const auto fractions = pre.TransitionFractions(t);
    const auto labels = pre.NoisyLabels(t);
    ASSERT_EQ(labels.size(), fractions.size());
    for (size_t k = 0; k < labels.size(); ++k) {
      EXPECT_EQ(labels[k], fractions[k] <= cfg.alpha ? 1 : 0)
          << "position " << k << " fraction " << fractions[k];
    }
  }
}

TEST_P(PreprocessProperty, NormalRouteFeatureEndpointsAlwaysNormal) {
  Preprocessor pre;
  pre.Fit(dataset_);
  for (size_t i = 0; i < std::min<size_t>(dataset_.size(), 100); ++i) {
    const auto nrf = pre.NormalRouteFeatures(dataset_[i].traj);
    EXPECT_EQ(nrf.front(), 0);
    EXPECT_EQ(nrf.back(), 0);
  }
}

TEST_P(PreprocessProperty, IncrementalUpdateEqualsBatchFit) {
  // Fit on the first half then Update with the second half must equal a
  // single Fit over everything, for every queryable statistic.
  traj::Dataset first_half, second_half;
  for (size_t i = 0; i < dataset_.size(); ++i) {
    (i % 2 == 0 ? first_half : second_half).Add(dataset_[i]);
  }

  Preprocessor incremental;
  incremental.Fit(first_half);
  for (const auto& lt : second_half.trajs()) {
    incremental.Update(lt.traj);
  }

  Preprocessor batch;
  batch.Fit(dataset_);

  EXPECT_EQ(incremental.NumGroups(), batch.NumGroups());
  for (size_t i = 0; i < std::min<size_t>(dataset_.size(), 60); ++i) {
    const auto& t = dataset_[i].traj;
    EXPECT_EQ(incremental.TransitionFractions(t),
              batch.TransitionFractions(t));
    EXPECT_EQ(incremental.NoisyLabels(t), batch.NoisyLabels(t));
    EXPECT_EQ(incremental.NormalRouteFeatures(t),
              batch.NormalRouteFeatures(t));
  }
}

TEST_P(PreprocessProperty, SnapshotRoundTripPreservesAllQueries) {
  Preprocessor pre;
  pre.Fit(dataset_);
  const auto snaps = pre.ExportState();

  Preprocessor restored;
  restored.ImportState(snaps);

  EXPECT_EQ(restored.NumGroups(), pre.NumGroups());
  for (size_t i = 0; i < std::min<size_t>(dataset_.size(), 60); ++i) {
    const auto& t = dataset_[i].traj;
    EXPECT_EQ(restored.TransitionFractions(t), pre.TransitionFractions(t));
    EXPECT_EQ(restored.NoisyLabels(t), pre.NoisyLabels(t));
    EXPECT_EQ(restored.NormalRouteFeatures(t), pre.NormalRouteFeatures(t));
  }
}

TEST_P(PreprocessProperty, ExportStateIsDeterministic) {
  Preprocessor pre;
  pre.Fit(dataset_);
  const auto a = pre.ExportState();
  const auto b = pre.ExportState();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sd, b[i].sd);
    EXPECT_EQ(a[i].slot, b[i].slot);
    EXPECT_EQ(a[i].num_trajs, b[i].num_trajs);
    EXPECT_EQ(a[i].transitions, b[i].transitions);
    EXPECT_EQ(a[i].routes, b[i].routes);
  }
}

TEST_P(PreprocessProperty, UnknownSdPairIsConservative) {
  Preprocessor pre;
  pre.Fit(dataset_);
  // A trajectory whose SD pair never occurred: fractions must degrade to
  // 0 (unknown transitions), endpoints stay 1, NRF flags interior segments.
  traj::MapMatchedTrajectory ghost;
  ghost.edges = {static_cast<traj::EdgeId>(net_.NumEdges() - 1),
                 static_cast<traj::EdgeId>(net_.NumEdges() - 2),
                 static_cast<traj::EdgeId>(net_.NumEdges() - 3)};
  ghost.start_time = 12 * 3600.0;
  const auto fractions = pre.TransitionFractions(ghost);
  EXPECT_DOUBLE_EQ(fractions.front(), 1.0);
  EXPECT_DOUBLE_EQ(fractions.back(), 1.0);
  EXPECT_DOUBLE_EQ(fractions[1], 0.0);
  EXPECT_FALSE(
      pre.EdgeOnNormalRouteAt(ghost.sd(), ghost.start_time, ghost.edges[1]));
}

TEST_P(PreprocessProperty, WarmingCachesDoesNotChangeAnswers) {
  Preprocessor lazy, warmed;
  lazy.Fit(dataset_);
  warmed.Fit(dataset_);
  warmed.WarmNormalRouteCaches();
  for (size_t i = 0; i < std::min<size_t>(dataset_.size(), 40); ++i) {
    const auto& t = dataset_[i].traj;
    EXPECT_EQ(warmed.NormalRouteFeatures(t), lazy.NormalRouteFeatures(t));
    for (size_t k = 1; k < t.edges.size(); ++k) {
      EXPECT_EQ(warmed.NormalRouteFeatureAt(t.sd(), t.start_time,
                                            t.edges[k - 1], t.edges[k]),
                lazy.NormalRouteFeatureAt(t.sd(), t.start_time,
                                          t.edges[k - 1], t.edges[k]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreprocessProperty,
                         ::testing::Values(uint64_t{10}, uint64_t{20},
                                           uint64_t{31}));

}  // namespace
}  // namespace rl4oasd::core
