// Property-based tests for the road-network substrate: shortest paths
// cross-checked against a brute-force Bellman-Ford oracle on random graphs,
// alternative-route invariants, spatial-index correctness against linear
// scan, and geometry sanity.
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mapmatch/spatial_index.h"
#include "roadnet/geometry.h"
#include "roadnet/grid_city.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"
#include "test_util.h"

namespace rl4oasd::roadnet {
namespace {

/// Brute-force single-source shortest distances over vertices (Bellman-Ford,
/// edge-length weights) — the oracle for Dijkstra.
std::vector<double> BellmanFord(const RoadNetwork& net, VertexId src) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(net.NumVertices(), kInf);
  dist[src] = 0.0;
  for (size_t round = 0; round + 1 < net.NumVertices(); ++round) {
    bool changed = false;
    for (size_t e = 0; e < net.NumEdges(); ++e) {
      const Edge& ed = net.edge(static_cast<EdgeId>(e));
      if (dist[ed.from] + ed.length_m < dist[ed.to] - 1e-9) {
        dist[ed.to] = dist[ed.from] + ed.length_m;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

/// Random sparse digraph with positive edge lengths.
RoadNetwork RandomGraph(Rng* rng, int vertices, int edges) {
  RoadNetwork net;
  for (int v = 0; v < vertices; ++v) {
    net.AddVertex({30.0 + 0.001 * rng->Uniform(), 104.0 + 0.001 * rng->Uniform()});
  }
  for (int e = 0; e < edges; ++e) {
    const auto a = static_cast<VertexId>(rng->UniformInt(uint64_t(vertices)));
    auto b = static_cast<VertexId>(rng->UniformInt(uint64_t(vertices)));
    if (a == b) b = (b + 1) % vertices;
    net.AddEdge(a, b, rng->Uniform(10.0, 500.0));
  }
  net.Build();
  return net;
}

class ShortestPathProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShortestPathProperty, MatchesBellmanFordOracle) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const auto net = RandomGraph(&rng, 25, 80);
    const auto src = static_cast<VertexId>(rng.UniformInt(uint64_t{25}));
    const auto oracle = BellmanFord(net, src);
    for (VertexId dst = 0; dst < static_cast<VertexId>(net.NumVertices());
         ++dst) {
      const auto path = ShortestPath(net, src, dst);
      if (oracle[dst] == std::numeric_limits<double>::infinity()) {
        if (src != dst) {
          EXPECT_TRUE(path.empty()) << "oracle says unreachable";
        }
        continue;
      }
      if (src == dst) continue;  // zero-length convention: skip
      ASSERT_FALSE(path.empty()) << "oracle says reachable";
      EXPECT_TRUE(net.IsConnectedPath(path));
      EXPECT_EQ(net.edge(path.front()).from, src);
      EXPECT_EQ(net.edge(path.back()).to, dst);
      EXPECT_NEAR(net.PathLengthMeters(path), oracle[dst],
                  1e-6 * std::max(1.0, oracle[dst]));
    }
  }
}

TEST_P(ShortestPathProperty, EdgeToEdgePathTraversesBothEndpoints) {
  Rng rng(GetParam() ^ 0xA5A5);
  const auto net = testing::SmallGrid(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = static_cast<EdgeId>(rng.UniformInt(net.NumEdges()));
    const auto b = static_cast<EdgeId>(rng.UniformInt(net.NumEdges()));
    const auto path = ShortestPathBetweenEdges(net, a, b);
    if (path.empty()) continue;
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    EXPECT_TRUE(net.IsConnectedPath(path));
  }
}

TEST_P(ShortestPathProperty, AlternativeRoutesInvariants) {
  Rng rng(GetParam() ^ 0x1111);
  const auto net = testing::SmallGrid(GetParam() + 5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = static_cast<EdgeId>(rng.UniformInt(net.NumEdges()));
    const auto b = static_cast<EdgeId>(rng.UniformInt(net.NumEdges()));
    const auto routes = AlternativeRoutes(net, a, b, 4);
    if (routes.empty()) continue;
    // First route is the true shortest path.
    const auto sp = ShortestPathBetweenEdges(net, a, b);
    EXPECT_NEAR(net.PathLengthMeters(routes[0]), net.PathLengthMeters(sp),
                1e-9);
    for (size_t i = 0; i < routes.size(); ++i) {
      EXPECT_TRUE(net.IsConnectedPath(routes[i]));
      EXPECT_EQ(routes[i].front(), a);
      EXPECT_EQ(routes[i].back(), b);
      // No shorter route may appear after a longer one was found first...
      // (penalties only grow), and all routes are pairwise distinct.
      for (size_t j = i + 1; j < routes.size(); ++j) {
        EXPECT_NE(routes[i], routes[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShortestPathProperty,
                         ::testing::Values(uint64_t{3}, uint64_t{29},
                                           uint64_t{123}));

// ---------------------------------------------------------------------------
// Spatial index vs linear scan.

class SpatialIndexProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpatialIndexProperty, QueryMatchesLinearScan) {
  const auto net = testing::SmallGrid(GetParam());
  mapmatch::SpatialIndex index(&net, /*cell_size_m=*/150.0);
  Rng rng(GetParam() ^ 0xDEAD);

  for (int trial = 0; trial < 40; ++trial) {
    // A query point near a random vertex.
    const auto v = static_cast<VertexId>(rng.UniformInt(net.NumVertices()));
    LatLon p = net.vertex(v).pos;
    p.lat += rng.Uniform(-0.001, 0.001);
    p.lon += rng.Uniform(-0.001, 0.001);
    const double radius = rng.Uniform(50.0, 400.0);

    const auto got = index.Query(p, radius, /*max_candidates=*/1000);

    // Oracle: all edges within radius, by point-to-segment distance.
    size_t expected_count = 0;
    double best = std::numeric_limits<double>::infinity();
    for (size_t e = 0; e < net.NumEdges(); ++e) {
      const Edge& ed = net.edge(static_cast<EdgeId>(e));
      const double d = PointToSegmentMeters(p, net.vertex(ed.from).pos,
                                            net.vertex(ed.to).pos);
      if (d <= radius) ++expected_count;
      best = std::min(best, d);
    }
    EXPECT_EQ(got.size(), expected_count) << "radius " << radius;
    if (!got.empty()) {
      // Sorted by distance, closest first, and the closest agrees with the
      // oracle's minimum.
      EXPECT_NEAR(got.front().distance_m, best, 1e-6);
      for (size_t i = 1; i < got.size(); ++i) {
        EXPECT_LE(got[i - 1].distance_m, got[i].distance_m + 1e-9);
      }
    }
  }
}

TEST_P(SpatialIndexProperty, MaxCandidatesTruncatesClosestFirst) {
  const auto net = testing::SmallGrid(GetParam());
  mapmatch::SpatialIndex index(&net, 150.0);
  const LatLon p = net.vertex(net.NumVertices() / 2).pos;
  const auto all = index.Query(p, 500.0, 1000);
  const auto top3 = index.Query(p, 500.0, 3);
  ASSERT_LE(top3.size(), 3u);
  for (size_t i = 0; i < top3.size() && i < all.size(); ++i) {
    EXPECT_EQ(top3[i].edge, all[i].edge);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialIndexProperty,
                         ::testing::Values(uint64_t{7}, uint64_t{77}));

// ---------------------------------------------------------------------------
// Geometry.

TEST(GeometryProperty, HaversineAxioms) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const LatLon a{rng.Uniform(-60, 60), rng.Uniform(-180, 180)};
    const LatLon b{rng.Uniform(-60, 60), rng.Uniform(-180, 180)};
    EXPECT_NEAR(HaversineMeters(a, b), HaversineMeters(b, a), 1e-6);
    EXPECT_GE(HaversineMeters(a, b), 0.0);
    EXPECT_NEAR(HaversineMeters(a, a), 0.0, 1e-9);
  }
}

TEST(GeometryProperty, ApproxDistanceCloseToHaversineAtCityScale) {
  Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    const LatLon a{30.6 + rng.Uniform(-0.05, 0.05),
                   104.0 + rng.Uniform(-0.05, 0.05)};
    const LatLon b{30.6 + rng.Uniform(-0.05, 0.05),
                   104.0 + rng.Uniform(-0.05, 0.05)};
    const double h = HaversineMeters(a, b);
    const double approx = ApproxDistanceMeters(a, b);
    EXPECT_NEAR(approx, h, 0.01 * std::max(10.0, h));  // within 1%
  }
}

TEST(GeometryProperty, PointToSegmentBounds) {
  Rng rng(16);
  for (int trial = 0; trial < 100; ++trial) {
    const LatLon a{30.6 + rng.Uniform(-0.01, 0.01),
                   104.0 + rng.Uniform(-0.01, 0.01)};
    const LatLon b{30.6 + rng.Uniform(-0.01, 0.01),
                   104.0 + rng.Uniform(-0.01, 0.01)};
    const LatLon p{30.6 + rng.Uniform(-0.01, 0.01),
                   104.0 + rng.Uniform(-0.01, 0.01)};
    const double d = PointToSegmentMeters(p, a, b);
    // Segment distance is at most the distance to either endpoint and
    // non-negative.
    EXPECT_GE(d, -1e-9);
    EXPECT_LE(d, ApproxDistanceMeters(p, a) + 1e-6);
    EXPECT_LE(d, ApproxDistanceMeters(p, b) + 1e-6);
    // Projection parameter clamps to [0, 1] and the reported closest point
    // is consistent with the distance.
    LatLon closest;
    const double t = ProjectOntoSegment(p, a, b, &closest);
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
    EXPECT_NEAR(ApproxDistanceMeters(p, closest), d, 1e-6 + 0.01 * d);
  }
}

// ---------------------------------------------------------------------------
// Grid city structural invariants.

class GridCityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridCityProperty, DegreesConsistentWithAdjacency) {
  const auto net = testing::SmallGrid(GetParam());
  for (size_t e = 0; e < net.NumEdges(); ++e) {
    const auto id = static_cast<EdgeId>(e);
    EXPECT_EQ(net.EdgeOutDegree(id),
              static_cast<int>(net.NextEdges(id).size()));
    EXPECT_EQ(net.EdgeInDegree(id),
              static_cast<int>(net.PrevEdges(id).size()));
    for (EdgeId next : net.NextEdges(id)) {
      EXPECT_TRUE(net.AreConsecutive(id, next));
    }
  }
}

TEST_P(GridCityProperty, EdgeLengthsPositiveAndFinite) {
  const auto net = testing::SmallGrid(GetParam());
  for (size_t e = 0; e < net.NumEdges(); ++e) {
    const double len = net.edge(static_cast<EdgeId>(e)).length_m;
    EXPECT_GT(len, 0.0);
    EXPECT_LT(len, 2000.0);  // blocks are ~200 m with jitter
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridCityProperty,
                         ::testing::Values(uint64_t{1}, uint64_t{2},
                                           uint64_t{3}));

}  // namespace
}  // namespace rl4oasd::roadnet
