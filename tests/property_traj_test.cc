// Property-based tests for the trajectory substrate: workload-generator
// invariants swept over seeds/configs, dataset splitting, and time slots.
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"
#include "traj/dataset.h"
#include "traj/generator.h"
#include "traj/types.h"

namespace rl4oasd::traj {
namespace {

class GeneratorProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {
 protected:
  Dataset Make(const roadnet::RoadNetwork& net) {
    auto [seed, anomaly_ratio] = GetParam();
    GeneratorConfig cfg;
    cfg.num_sd_pairs = 5;
    cfg.min_trajs_per_pair = 40;
    cfg.max_trajs_per_pair = 80;
    cfg.anomaly_ratio = anomaly_ratio;
    cfg.min_pair_dist_m = 800;
    cfg.max_pair_dist_m = 2500;
    cfg.min_route_edges = 8;
    cfg.seed = seed;
    TrajectoryGenerator gen(&net, cfg);
    return gen.Generate();
  }
};

TEST_P(GeneratorProperty, EveryTrajectoryIsConsistent) {
  const auto net = rl4oasd::testing::SmallGrid();
  const auto ds = Make(net);
  ASSERT_GT(ds.size(), 0u);
  std::unordered_set<int64_t> ids;
  for (const auto& lt : ds.trajs()) {
    // Labels parallel to edges; connected path; unique id; valid start time.
    ASSERT_EQ(lt.labels.size(), lt.traj.edges.size());
    EXPECT_TRUE(net.IsConnectedPath(lt.traj.edges));
    EXPECT_TRUE(ids.insert(lt.traj.id).second);
    EXPECT_GE(lt.traj.start_time, 0.0);
    EXPECT_LT(lt.traj.start_time, 24 * 3600.0);
    EXPECT_GE(lt.traj.edges.size(), 2u);
  }
}

TEST_P(GeneratorProperty, EndpointsAreAlwaysNormal) {
  // The paper defines source and destination segments as normal.
  const auto net = rl4oasd::testing::SmallGrid();
  const auto ds = Make(net);
  for (const auto& lt : ds.trajs()) {
    EXPECT_EQ(lt.labels.front(), 0);
    EXPECT_EQ(lt.labels.back(), 0);
  }
}

TEST_P(GeneratorProperty, AnomalyRatioApproximatelyRespected) {
  auto [seed, ratio] = GetParam();
  const auto net = rl4oasd::testing::SmallGrid();
  const auto ds = Make(net);
  const double actual =
      static_cast<double>(ds.NumAnomalous()) / static_cast<double>(ds.size());
  // Detour injection can fail and fall back to normal, so the realized
  // ratio may undershoot; it must never overshoot by more than noise.
  EXPECT_LE(actual, ratio * 1.6 + 0.02);
  if (ratio >= 0.05) {
    EXPECT_GT(actual, ratio * 0.3);
  }
}

TEST_P(GeneratorProperty, DetoursReallyLeaveTheNormalRoutes) {
  // A detour splice guarantees at least two interior edges off the pair's
  // normal routes (individual anomalous edges may briefly cross a normal
  // segment — the generator labels the whole splice contiguously, as a
  // human labeler would).
  auto [seed, ratio] = GetParam();
  const auto net = rl4oasd::testing::SmallGrid();
  GeneratorConfig cfg;
  cfg.num_sd_pairs = 5;
  cfg.min_trajs_per_pair = 40;
  cfg.max_trajs_per_pair = 80;
  cfg.anomaly_ratio = ratio;
  cfg.min_pair_dist_m = 800;
  cfg.max_pair_dist_m = 2500;
  cfg.min_route_edges = 8;
  cfg.seed = seed;
  TrajectoryGenerator gen(&net, cfg);
  const auto ds = gen.Generate();

  int64_t anomalous_total = 0, anomalous_off_normal = 0;
  for (const auto& info : gen.pairs()) {
    std::unordered_set<EdgeId> normal_edges;
    for (const auto& route : info.normal_routes) {
      normal_edges.insert(route.begin(), route.end());
    }
    for (size_t idx : ds.Group(info.sd)) {
      const auto& lt = ds[idx];
      if (!lt.HasAnomaly()) continue;
      int off_normal = 0;
      for (size_t i = 0; i < lt.labels.size(); ++i) {
        if (lt.labels[i] != 1) continue;
        ++anomalous_total;
        if (!normal_edges.contains(lt.traj.edges[i])) {
          ++off_normal;
          ++anomalous_off_normal;
        }
      }
      EXPECT_GE(off_normal, 2)
          << "trajectory " << lt.traj.id << " has a detour that never "
          << "leaves its pair's normal routes";
    }
  }
  // In aggregate, the overwhelming majority of anomalous edges are off the
  // normal routes; brief crossings are the exception.
  if (anomalous_total > 0) {
    EXPECT_GT(anomalous_off_normal * 10, anomalous_total * 7);
  }
}

TEST_P(GeneratorProperty, SameSeedSameDataset) {
  const auto net = rl4oasd::testing::SmallGrid();
  const auto a = Make(net);
  const auto b = Make(net);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].traj.edges, b[i].traj.edges);
    EXPECT_EQ(a[i].labels, b[i].labels);
    EXPECT_EQ(a[i].traj.start_time, b[i].traj.start_time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorProperty,
    ::testing::Combine(::testing::Values(uint64_t{11}, uint64_t{42},
                                         uint64_t{2023}),
                       ::testing::Values(0.0, 0.05, 0.2)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_ratio" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// ---------------------------------------------------------------------------
// Dataset operations.

class DatasetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DatasetProperty, SplitIsAPartition) {
  const auto net = rl4oasd::testing::SmallGrid();
  const auto ds = rl4oasd::testing::SmallDataset(net, 4);
  Rng rng(GetParam());
  const size_t train_size = ds.size() / 3;
  auto [train, test] = ds.Split(train_size, &rng);
  EXPECT_EQ(train.size(), train_size);
  EXPECT_EQ(train.size() + test.size(), ds.size());
  std::unordered_set<int64_t> ids;
  for (const auto& lt : train.trajs()) ids.insert(lt.traj.id);
  for (const auto& lt : test.trajs()) {
    EXPECT_FALSE(ids.contains(lt.traj.id)) << "id in both splits";
  }
}

TEST_P(DatasetProperty, DropFractionKeepsAtLeastOnePerPair) {
  const auto net = rl4oasd::testing::SmallGrid();
  const auto ds = rl4oasd::testing::SmallDataset(net, 4);
  Rng rng(GetParam());
  for (double rate : {0.5, 0.9, 0.99}) {
    const auto dropped = ds.DropFraction(rate, &rng);
    EXPECT_LT(dropped.size(), ds.size());
    EXPECT_EQ(dropped.NumSdPairs(), ds.NumSdPairs());
    for (const auto& [sd, indices] : dropped.Groups()) {
      EXPECT_GE(indices.size(), 1u);
    }
  }
}

TEST_P(DatasetProperty, FilterSparsePairsThreshold) {
  const auto net = rl4oasd::testing::SmallGrid();
  auto ds = rl4oasd::testing::SmallDataset(net, 5);
  // Add one pair with 3 trajectories only.
  LabeledTrajectory tiny;
  tiny.traj.id = 1 << 20;
  tiny.traj.edges = ds[0].traj.edges;
  std::reverse(tiny.traj.edges.begin(), tiny.traj.edges.end());
  // A reversed edge sequence is not a valid path, but SD grouping only
  // reads the endpoints; use 3 copies to form a sparse pair.
  tiny.labels.assign(tiny.traj.edges.size(), 0);
  for (int i = 0; i < 3; ++i) {
    auto copy = tiny;
    copy.traj.id += i;
    ds.Add(std::move(copy));
  }
  const size_t pairs_before = ds.NumSdPairs();
  ds.FilterSparsePairs(25);
  EXPECT_EQ(ds.NumSdPairs(), pairs_before - 1);
  for (const auto& [sd, indices] : ds.Groups()) {
    EXPECT_GE(indices.size(), 25u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetProperty,
                         ::testing::Values(uint64_t{6}, uint64_t{66}));

// ---------------------------------------------------------------------------
// Time slots.

TEST(TimeSlotProperty, CoversTheDayWithoutGaps) {
  for (int granularity : {1, 2, 3, 6, 12, 24}) {
    const int slots = NumTimeSlots(granularity);
    EXPECT_EQ(slots, 24 / granularity);
    int prev = -1;
    for (double t = 0; t < 24 * 3600.0; t += 977.0) {
      const int slot = TimeSlotOf(t, granularity);
      EXPECT_GE(slot, 0);
      EXPECT_LT(slot, slots);
      EXPECT_GE(slot, prev);  // non-decreasing over the day
      prev = slot;
    }
    // Slot boundaries at exact hour multiples.
    EXPECT_EQ(TimeSlotOf(0.0, granularity), 0);
    EXPECT_EQ(TimeSlotOf(granularity * 3600.0, granularity),
              slots > 1 ? 1 : 0);
  }
}

}  // namespace
}  // namespace rl4oasd::traj
