// Road-network substrate tests: graph queries, geometry, shortest paths,
// alternative routes, grid-city properties, and CSV persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "roadnet/geometry.h"
#include "roadnet/grid_city.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

namespace rl4oasd::roadnet {
namespace {

RoadNetwork MakeDiamond() {
  // v0 -> v1 -> v3 and v0 -> v2 -> v3 with a long bottom path.
  RoadNetwork net;
  const VertexId v0 = net.AddVertex({30.000, 104.000});
  const VertexId v1 = net.AddVertex({30.001, 104.001});
  const VertexId v2 = net.AddVertex({29.999, 104.001});
  const VertexId v3 = net.AddVertex({30.000, 104.002});
  net.AddEdge(v0, v1);          // e0
  net.AddEdge(v1, v3);          // e1
  net.AddEdge(v0, v2, 500.0);   // e2 (made long explicitly)
  net.AddEdge(v2, v3, 500.0);   // e3
  net.Build();
  return net;
}

TEST(GeometryTest, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km.
  const LatLon a{30.0, 104.0};
  const LatLon b{31.0, 104.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111200.0, 500.0);
  EXPECT_NEAR(HaversineMeters(a, a), 0.0, 1e-6);
}

TEST(GeometryTest, ApproxMatchesHaversineAtCityScale) {
  const LatLon a{30.60, 104.00};
  const LatLon b{30.62, 104.03};
  const double h = HaversineMeters(a, b);
  const double e = ApproxDistanceMeters(a, b);
  EXPECT_NEAR(e / h, 1.0, 0.01);
}

TEST(GeometryTest, ProjectionOntoSegment) {
  const LatLon a{30.0, 104.0};
  const LatLon b{30.0, 104.01};
  LatLon closest;
  // Point above the midpoint projects to the midpoint.
  const LatLon p{30.001, 104.005};
  const double t = ProjectOntoSegment(p, a, b, &closest);
  EXPECT_NEAR(t, 0.5, 0.01);
  EXPECT_NEAR(closest.lat, 30.0, 1e-9);
  // Point beyond the end clamps to t = 1.
  const LatLon q{30.0, 104.02};
  EXPECT_DOUBLE_EQ(ProjectOntoSegment(q, a, b, &closest), 1.0);
}

TEST(GeometryTest, PointToSegmentDistance) {
  const LatLon a{30.0, 104.0};
  const LatLon b{30.0, 104.01};
  const LatLon p{30.001, 104.005};  // ~111 m north of the segment
  EXPECT_NEAR(PointToSegmentMeters(p, a, b), 111.2, 2.0);
}

TEST(RoadNetworkTest, DegreesAndAdjacency) {
  const RoadNetwork net = MakeDiamond();
  EXPECT_EQ(net.NumVertices(), 4u);
  EXPECT_EQ(net.NumEdges(), 4u);
  // e0 = v0->v1: successor is e1 only.
  EXPECT_EQ(net.EdgeOutDegree(0), 1);
  EXPECT_EQ(net.NextEdges(0), (std::vector<EdgeId>{1}));
  // e0's start vertex has in-degree 0.
  EXPECT_EQ(net.EdgeInDegree(0), 0);
  // e1 = v1->v3: e3 also enters v3.
  EXPECT_TRUE(net.AreConsecutive(0, 1));
  EXPECT_FALSE(net.AreConsecutive(0, 3));
  EXPECT_EQ(net.PrevEdges(1), (std::vector<EdgeId>{0}));
}

TEST(RoadNetworkTest, PathHelpers) {
  const RoadNetwork net = MakeDiamond();
  EXPECT_TRUE(net.IsConnectedPath({0, 1}));
  EXPECT_FALSE(net.IsConnectedPath({0, 3}));
  EXPECT_TRUE(net.IsConnectedPath({}));
  EXPECT_GT(net.PathLengthMeters({0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(net.PathLengthMeters({2, 3}), 1000.0);
}

TEST(RoadNetworkTest, EdgeLengthFromGeometry) {
  const RoadNetwork net = MakeDiamond();
  // e0 connects points ~140 m apart.
  const double d = HaversineMeters({30.000, 104.000}, {30.001, 104.001});
  EXPECT_NEAR(net.edge(0).length_m, d, 1e-6);
}

TEST(ShortestPathTest, PrefersShortRoute) {
  const RoadNetwork net = MakeDiamond();
  const auto path = ShortestPath(net, 0, 3);
  EXPECT_EQ(path, (std::vector<EdgeId>{0, 1}));
}

TEST(ShortestPathTest, RespectsCustomWeights) {
  const RoadNetwork net = MakeDiamond();
  // Penalize the top path heavily.
  auto weight = [&](EdgeId e) {
    return (e == 0 || e == 1) ? 1e6 : net.edge(e).length_m;
  };
  const auto path = ShortestPath(net, 0, 3, weight);
  EXPECT_EQ(path, (std::vector<EdgeId>{2, 3}));
}

TEST(ShortestPathTest, UnreachableReturnsEmpty) {
  RoadNetwork net;
  const VertexId v0 = net.AddVertex({30, 104});
  const VertexId v1 = net.AddVertex({30.001, 104});
  const VertexId v2 = net.AddVertex({30.002, 104});
  net.AddEdge(v0, v1);
  net.Build();
  EXPECT_TRUE(ShortestPath(net, 0, 2).empty());
  (void)v2;
}

TEST(ShortestPathTest, BetweenEdgesInclusive) {
  const RoadNetwork net = MakeDiamond();
  const auto path = ShortestPathBetweenEdges(net, 0, 1);
  EXPECT_EQ(path, (std::vector<EdgeId>{0, 1}));
  // Same edge: single-element path.
  const auto self = ShortestPathBetweenEdges(net, 0, 0);
  EXPECT_EQ(self, (std::vector<EdgeId>{0}));
}

TEST(ShortestPathTest, NetworkDistance) {
  const RoadNetwork net = MakeDiamond();
  EXPECT_DOUBLE_EQ(NetworkDistanceMeters(net, 0, 0), 0.0);
  EXPECT_NEAR(NetworkDistanceMeters(net, 0, 1), net.edge(1).length_m, 1e-9);
  // Unreachable: e1 cannot reach e0.
  EXPECT_LT(NetworkDistanceMeters(net, 1, 0), 0.0);
}

TEST(EdgeDijkstraTest, MatchesNetworkDistance) {
  GridCityConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  const RoadNetwork net = BuildGridCity(cfg);
  EdgeDijkstra search(&net);
  const double bound = 1500.0;
  for (EdgeId src = 0; src < static_cast<EdgeId>(net.NumEdges()); src += 29) {
    search.Run(src, bound);
    for (EdgeId dst = 0; dst < static_cast<EdgeId>(net.NumEdges());
         dst += 17) {
      const double d = search.DistanceTo(dst);
      const double want = NetworkDistanceMeters(net, src, dst);
      if (want >= 0.0 && want <= bound) {
        EXPECT_DOUBLE_EQ(d, want) << src << "->" << dst;
      } else {
        EXPECT_LT(d, 0.0) << src << "->" << dst;
      }
    }
  }
}

TEST(EdgeDistanceTableTest, BitIdenticalToLiveSearch) {
  GridCityConfig cfg;
  cfg.rows = 7;
  cfg.cols = 7;
  const RoadNetwork net = BuildGridCity(cfg);
  EdgeDistanceTable table;
  table.Build(net, 900.0);
  ASSERT_TRUE(table.built());
  EXPECT_DOUBLE_EQ(table.bound_m(), 900.0);
  EdgeDijkstra search(&net);
  for (EdgeId src = 0; src < static_cast<EdgeId>(net.NumEdges()); src += 13) {
    search.Run(src, 900.0);
    for (EdgeId dst = 0; dst < static_cast<EdgeId>(net.NumEdges()); ++dst) {
      const double live = search.DistanceTo(dst);
      const double tab = table.DistanceTo(src, dst);
      if (live >= 0.0) {
        // Exactly the live search's settled distance — no tolerance.
        EXPECT_EQ(tab, live) << src << "->" << dst;
      } else {
        EXPECT_LT(tab, 0.0) << src << "->" << dst;
      }
    }
    EXPECT_EQ(table.DistanceTo(src, src), 0.0);
  }
  EXPECT_GT(table.NumEntries(), net.NumEdges());  // beyond the diagonal
}

TEST(AlternativeRoutesTest, FindsDistinctRoutes) {
  const RoadNetwork net = MakeDiamond();
  const auto routes = AlternativeRoutes(net, 0, 1, 2);
  // Only one route exists between e0 and e1 in the diamond.
  ASSERT_GE(routes.size(), 1u);
  EXPECT_EQ(routes[0], (std::vector<EdgeId>{0, 1}));
}

TEST(AlternativeRoutesTest, GridProducesMultipleRoutes) {
  GridCityConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.removal_prob = 0.0;
  const RoadNetwork net = BuildGridCity(cfg);
  // Pick two far-apart edges.
  const EdgeId src = 0;
  const EdgeId dst = static_cast<EdgeId>(net.NumEdges() - 1);
  const auto routes = AlternativeRoutes(net, src, dst, 3);
  ASSERT_GE(routes.size(), 2u);
  std::set<std::vector<EdgeId>> distinct(routes.begin(), routes.end());
  EXPECT_EQ(distinct.size(), routes.size());
  for (const auto& r : routes) {
    EXPECT_TRUE(net.IsConnectedPath(r));
    EXPECT_EQ(r.front(), src);
    EXPECT_EQ(r.back(), dst);
  }
  // The first route is the true shortest.
  for (size_t k = 1; k < routes.size(); ++k) {
    EXPECT_LE(net.PathLengthMeters(routes[0]),
              net.PathLengthMeters(routes[k]) + 1e-9);
  }
}

TEST(GridCityTest, SizeMatchesPaperScale) {
  const RoadNetwork net = BuildGridCity(GridCityConfig{});
  // Paper: 4,885 (Chengdu) / 5,052 (Xi'an) segments.
  EXPECT_GT(net.NumEdges(), 4000u);
  EXPECT_LT(net.NumEdges(), 6000u);
  EXPECT_EQ(net.NumVertices(), 36u * 36u);
}

TEST(GridCityTest, Deterministic) {
  GridCityConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  const RoadNetwork a = BuildGridCity(cfg);
  const RoadNetwork b = BuildGridCity(cfg);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (EdgeId e = 0; e < static_cast<EdgeId>(a.NumEdges()); ++e) {
    EXPECT_EQ(a.edge(e).from, b.edge(e).from);
    EXPECT_EQ(a.edge(e).to, b.edge(e).to);
    EXPECT_DOUBLE_EQ(a.edge(e).length_m, b.edge(e).length_m);
  }
}

TEST(GridCityTest, ArterialsFasterThanLocals) {
  const RoadNetwork net = BuildGridCity(GridCityConfig{});
  double arterial_speed = 0.0, local_speed = 1e9;
  for (EdgeId e = 0; e < static_cast<EdgeId>(net.NumEdges()); ++e) {
    const auto& edge = net.edge(e);
    if (edge.road_class == RoadClass::kArterial) {
      arterial_speed = std::max(arterial_speed, edge.speed_limit_mps);
    } else if (edge.road_class == RoadClass::kLocal) {
      local_speed = std::min(local_speed, edge.speed_limit_mps);
    }
  }
  EXPECT_GT(arterial_speed, local_speed);
}

TEST(GridCityTest, BidirectionalEdges) {
  GridCityConfig cfg;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.removal_prob = 0.0;
  const RoadNetwork net = BuildGridCity(cfg);
  // Every edge has a reverse twin.
  for (EdgeId e = 0; e < static_cast<EdgeId>(net.NumEdges()); ++e) {
    bool found = false;
    for (EdgeId r : net.OutEdges(net.edge(e).to)) {
      if (net.edge(r).to == net.edge(e).from) found = true;
    }
    EXPECT_TRUE(found) << "edge " << e << " has no reverse";
  }
}

TEST(RoadNetworkIoTest, CsvRoundTrip) {
  GridCityConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  const RoadNetwork net = BuildGridCity(cfg);
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "rl4oasd_net_test").string();
  ASSERT_TRUE(net.SaveCsv(prefix).ok());
  auto loaded = RoadNetwork::LoadCsv(prefix);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->NumVertices(), net.NumVertices());
  ASSERT_EQ(loaded->NumEdges(), net.NumEdges());
  for (EdgeId e = 0; e < static_cast<EdgeId>(net.NumEdges()); ++e) {
    EXPECT_EQ(loaded->edge(e).from, net.edge(e).from);
    EXPECT_EQ(loaded->edge(e).to, net.edge(e).to);
    EXPECT_NEAR(loaded->edge(e).length_m, net.edge(e).length_m, 0.01);
    EXPECT_EQ(loaded->edge(e).road_class, net.edge(e).road_class);
  }
  std::remove((prefix + ".vertices.csv").c_str());
  std::remove((prefix + ".edges.csv").c_str());
}

TEST(RoadNetworkIoTest, LoadMissingFileFails) {
  auto r = RoadNetwork::LoadCsv("/nonexistent/prefix");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace rl4oasd::roadnet
