// Tests for the drift-adaptation loop (serve::DriftAdapter and friends):
//   * DriftDetector — stationary traffic never trips the CUSUM/ratio tests,
//     sustained shifts in either channel (alert rate, NRF rate) fire exactly
//     once, ClearFire re-fires on a persisting shift, Reset re-arms after a
//     cooldown, and the min_abs_shift floor guards a near-zero reference;
//   * label harvester — every EndTrip-finalized trip is drained exactly
//     once, evicted trips are never harvested, the buffer is bounded with
//     oldest-first eviction;
//   * shadow gate — a worse candidate is rejected (no swap, backoff
//     engaged), a better candidate is promoted via SwapModel, and a
//     byte-identical candidate short-circuits to a rejection;
//   * the whole loop stays clean under ThreadSanitizer with a background
//     worker fine-tuning and hot-swapping against concurrent batched ingest
//     and eviction churn (the CI TSAN job runs this suite).
#include <atomic>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "io/model_io.h"
#include "serve/drift.h"
#include "serve/fleet.h"
#include "test_util.h"
#include "traj/dataset.h"

namespace rl4oasd::serve {
namespace {

core::Rl4OasdConfig TinyConfig() {
  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  cfg.rsr.embed_dim = 16;
  cfg.rsr.nrf_dim = 8;
  cfg.rsr.hidden_dim = 16;
  cfg.asd.label_dim = 8;
  cfg.embedding.dim = 16;
  cfg.embedding.epochs = 1;
  cfg.pretrain_samples = 60;
  cfg.pretrain_epochs = 2;
  cfg.joint_samples = 120;
  cfg.epochs_per_traj = 1;
  return cfg;
}

// ---------------------------------------------------------------------------
// DriftDetector: pure windowed statistics, no service involved.

DriftConfig DetectorOnly() {
  DriftConfig dc;
  dc.window_points = 100;
  dc.reference_windows = 2;
  dc.cusum_k = 0.02;
  dc.cusum_h = 0.10;
  dc.ratio_threshold = 2.0;
  dc.min_abs_shift = 0.05;
  return dc;
}

TEST(DriftDetectorTest, StaysQuietOnStationaryTraffic) {
  DriftDetector det(DetectorOnly());
  // 100 trips of 20 segments at constant 5% alert / 10% NRF rates.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(det.ObserveTrip(20, 1, 2)) << "trip " << i;
  }
  EXPECT_TRUE(det.armed());
  EXPECT_FALSE(det.fired());
  const auto& s = det.stats();
  EXPECT_EQ(s.windows_completed, 20u);  // 2000 segments / 100 per window
  EXPECT_DOUBLE_EQ(s.ref_alert_rate, 0.05);
  EXPECT_DOUBLE_EQ(s.ref_nrf_rate, 0.10);
  EXPECT_DOUBLE_EQ(s.cusum_alert, 0.0);  // rate == ref: allowance absorbs it
}

TEST(DriftDetectorTest, FiresOnceOnSustainedAlertRateShift) {
  DriftDetector det(DetectorOnly());
  for (int i = 0; i < 10; ++i) det.ObserveTrip(20, 1, 2);  // ref = 5%
  ASSERT_TRUE(det.armed());
  // The alert rate jumps to 25%: excess 0.25 - 0.05 - 0.02 = 0.18 crosses
  // h = 0.10 in the first completed window. The rising edge is reported
  // exactly once even though the shift persists.
  int rising_edges = 0;
  for (int i = 0; i < 20; ++i) {
    rising_edges += det.ObserveTrip(20, 5, 2) ? 1 : 0;
  }
  EXPECT_EQ(rising_edges, 1);
  EXPECT_TRUE(det.fired());
  EXPECT_GT(det.stats().last_alert_rate, det.stats().ref_alert_rate);
}

TEST(DriftDetectorTest, FiresOnNrfShiftAlone) {
  // The label-free channel: a route-popularity swap first shows up as
  // segments the historical statistics place on no normal route, even if
  // the model's alert rate lags.
  DriftDetector det(DetectorOnly());
  for (int i = 0; i < 10; ++i) det.ObserveTrip(20, 1, 2);
  ASSERT_TRUE(det.armed());
  int rising_edges = 0;
  for (int i = 0; i < 20; ++i) {
    rising_edges += det.ObserveTrip(20, 1, 10) ? 1 : 0;  // NRF 10% -> 50%
  }
  EXPECT_EQ(rising_edges, 1);
  EXPECT_TRUE(det.fired());
}

TEST(DriftDetectorTest, ClearFireRefiresOnPersistingShift) {
  DriftDetector det(DetectorOnly());
  for (int i = 0; i < 10; ++i) det.ObserveTrip(20, 1, 2);
  for (int i = 0; i < 10; ++i) det.ObserveTrip(20, 5, 2);
  ASSERT_TRUE(det.fired());
  // A rejected candidate un-latches the fire but keeps the saturated CUSUM:
  // the very next completed window of still-shifted traffic re-fires.
  det.ClearFire();
  EXPECT_FALSE(det.fired());
  int rising_edges = 0;
  for (int i = 0; i < 10; ++i) {
    rising_edges += det.ObserveTrip(20, 5, 2) ? 1 : 0;
  }
  EXPECT_EQ(rising_edges, 1);
}

TEST(DriftDetectorTest, ResetRearmsOnNewRegimeAfterCooldown) {
  DriftDetector det(DetectorOnly());
  for (int i = 0; i < 10; ++i) det.ObserveTrip(20, 1, 2);
  for (int i = 0; i < 10; ++i) det.ObserveTrip(20, 5, 2);
  ASSERT_TRUE(det.fired());

  // Post-swap: discard 200 segments of transition traffic, then collect a
  // fresh reference. The new regime's 25% rate becomes the new normal.
  det.Reset(/*cooldown_points=*/200);
  EXPECT_FALSE(det.fired());
  EXPECT_FALSE(det.armed());
  for (int i = 0; i < 10; ++i) det.ObserveTrip(20, 5, 2);  // cooldown eats 200
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(det.ObserveTrip(20, 5, 2)) << "trip " << i;
  }
  EXPECT_TRUE(det.armed());
  EXPECT_FALSE(det.fired());
  EXPECT_DOUBLE_EQ(det.stats().ref_alert_rate, 0.25);
  EXPECT_EQ(det.stats().cooldown_points_remaining, 0u);
}

TEST(DriftDetectorTest, MinAbsShiftFloorGuardsNearZeroReference) {
  DriftConfig dc = DetectorOnly();
  dc.reference_windows = 1;
  DriftDetector det(dc);
  for (int i = 0; i < 4; ++i) det.ObserveTrip(25, 0, 0);  // ref = 0%
  ASSERT_TRUE(det.armed());
  // A 4% flutter trivially beats ratio * 0 but stays under the absolute
  // floor (5%), and two windows of CUSUM excess (2 * 0.02) stay under h.
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(det.ObserveTrip(25, 1, 0)) << "trip " << i;
  }
  // Back to quiet: the CUSUM decays instead of latching later.
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(det.ObserveTrip(25, 0, 0)) << "trip " << i;
  }
  EXPECT_FALSE(det.fired());
}

// ---------------------------------------------------------------------------
// DriftAdapter: harvester and gate, driven deterministically via Poll().

class DriftTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new roadnet::RoadNetwork(testing::SmallGrid());
    dataset_ = new traj::Dataset(testing::SmallDataset(*net_, 6, 0.12));
    model_ = new core::Rl4Oasd(net_, TinyConfig());
    model_->Fit(*dataset_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    delete net_;
    model_ = nullptr;
    dataset_ = nullptr;
    net_ = nullptr;
  }

  /// Shared-ownership deep copy of the trained suite model.
  static std::shared_ptr<core::Rl4Oasd> TrainedClone() {
    auto cloned = io::CloneModel(net_, *model_);
    EXPECT_TRUE(cloned.ok()) << cloned.status().ToString();
    return std::shared_ptr<core::Rl4Oasd>(std::move(cloned).value());
  }

  /// An untrained model over the same network: a strictly worse candidate.
  static std::shared_ptr<core::Rl4Oasd> FreshModel(uint64_t seed) {
    core::Rl4OasdConfig cfg = TinyConfig();
    cfg.seed = seed;
    cfg.rsr.seed = seed + 1;
    cfg.asd.seed = seed + 2;
    return std::make_shared<core::Rl4Oasd>(net_, cfg);
  }

  /// Feeds one whole trajectory through the adapter's monitor as `vid`.
  static void RunTrip(DriftAdapter* adapter, int64_t vid,
                      const traj::MapMatchedTrajectory& t) {
    ASSERT_TRUE(adapter->monitor()->StartTrip(vid, t.sd(), t.start_time).ok());
    double ts = t.start_time;
    for (traj::EdgeId e : t.edges) {
      ASSERT_TRUE(adapter->monitor()->Feed(vid, e, ts).ok());
      ts += 2.0;
    }
    ASSERT_TRUE(adapter->monitor()->EndTrip(vid).ok());
  }

  /// A detector that never arms (windows never close): harvester-only tests.
  static DriftConfig HarvestOnly() {
    DriftConfig dc;
    dc.window_points = size_t{1} << 30;
    return dc;
  }

  /// A detector guaranteed to fire at the first tested window (negative
  /// CUSUM allowance, zero threshold), single-shot via huge backoff and
  /// cooldown — the gate runs exactly one cycle per test.
  static DriftConfig HairTrigger() {
    DriftConfig dc;
    dc.window_points = 150;
    dc.reference_windows = 1;
    dc.cusum_k = -1.0;
    dc.cusum_h = 0.0;
    dc.min_buffer_trips = 40;
    dc.shadow_trips = 32;
    dc.fine_tune_max_samples = 8;
    dc.reject_backoff_points = size_t{1} << 40;
    dc.post_swap_cooldown_points = size_t{1} << 40;
    return dc;
  }

  /// Feeds dataset trips in order (so SD-pair groups stay dense enough for
  /// the gate's reference statistics) until `done` or the cap is hit.
  template <typename DoneFn>
  static void FeedUntil(DriftAdapter* adapter, size_t max_trips, DoneFn done) {
    int64_t vid = 1;
    size_t fed = 0;
    for (const auto& lt : dataset_->trajs()) {
      if (lt.traj.edges.size() < 2) continue;
      RunTrip(adapter, vid++, lt.traj);
      adapter->Poll();
      if (done(adapter->Status())) return;
      if (++fed >= max_trips) return;
    }
  }

  static roadnet::RoadNetwork* net_;
  static traj::Dataset* dataset_;
  static core::Rl4Oasd* model_;
};

roadnet::RoadNetwork* DriftTest::net_ = nullptr;
traj::Dataset* DriftTest::dataset_ = nullptr;
core::Rl4Oasd* DriftTest::model_ = nullptr;

TEST_F(DriftTest, HarvestsEachFinishedTripExactlyOnce) {
  CollectingSink downstream;
  DriftAdapter adapter(net_, TrainedClone(), {}, HarvestOnly(), &downstream);
  int64_t vid = 1;
  size_t fed = 0;
  for (const auto& lt : dataset_->trajs()) {
    if (lt.traj.edges.size() < 2) continue;
    RunTrip(&adapter, vid++, lt.traj);
    EXPECT_FALSE(adapter.Poll());  // no drift config can fire here
    if (++fed == 10) break;
  }
  DriftStatus s = adapter.Status();
  EXPECT_EQ(s.trips_harvested, 10u);
  EXPECT_EQ(s.buffer_trips, 10u);
  EXPECT_EQ(s.pending_trips, 0u);
  EXPECT_EQ(s.drift_events, 0u);
  // Re-polling with nothing new must not re-harvest anything.
  adapter.Poll();
  EXPECT_EQ(adapter.Status().trips_harvested, 10u);
  // Every callback reached the downstream sink unchanged.
  EXPECT_EQ(downstream.NumFinished(), 10u);
  EXPECT_EQ(adapter.monitor()->Stats().alerts_emitted,
            static_cast<int64_t>(downstream.NumAlerts()));
}

TEST_F(DriftTest, EvictedTripsAreNeverHarvested) {
  CollectingSink downstream;
  FleetConfig fleet;
  fleet.trip_timeout_s = 100.0;
  DriftAdapter adapter(net_, TrainedClone(), fleet, HarvestOnly(),
                       &downstream);
  const auto& t = (*dataset_)[0].traj;
  ASSERT_TRUE(adapter.monitor()->StartTrip(1, t.sd(), 0.0).ok());
  ASSERT_TRUE(adapter.monitor()->Feed(1, t.edges[0], 0.0).ok());
  ASSERT_EQ(adapter.monitor()->EvictStale(1e9), 1u);
  adapter.Poll();
  // Partial labels are not training data: eviction notifies downstream but
  // contributes nothing to the buffer or the detector.
  EXPECT_EQ(adapter.Status().trips_harvested, 0u);
  EXPECT_EQ(adapter.Status().buffer_trips, 0u);
  EXPECT_EQ(downstream.NumEvicted(), 1u);
  EXPECT_EQ(downstream.NumFinished(), 0u);
}

TEST_F(DriftTest, HarvestBufferIsBoundedOldestFirst) {
  DriftConfig dc = HarvestOnly();
  dc.max_buffer_trips = 4;
  DriftAdapter adapter(net_, TrainedClone(), {}, dc, nullptr);
  int64_t vid = 1;
  size_t fed = 0;
  for (const auto& lt : dataset_->trajs()) {
    if (lt.traj.edges.size() < 2) continue;
    RunTrip(&adapter, vid++, lt.traj);
    adapter.Poll();
    if (++fed == 10) break;
  }
  DriftStatus s = adapter.Status();
  EXPECT_EQ(s.trips_harvested, 10u);
  EXPECT_EQ(s.buffer_trips, 4u);
  EXPECT_EQ(s.buffer_evictions, 6u);
}

TEST_F(DriftTest, GateRejectsWorseCandidateAndBacksOff) {
  CollectingSink downstream;
  DriftConfig dc = HairTrigger();
  // The candidate is an untrained model: the gate must keep the incumbent.
  dc.candidate_factory = [](const core::Rl4Oasd&, const traj::Dataset&) {
    return FreshModel(4242);
  };
  DriftAdapter adapter(net_, TrainedClone(), {}, dc, &downstream);
  const uint64_t live_fp = io::ModelFingerprint(*adapter.monitor()->model());
  FeedUntil(&adapter, 120, [](const DriftStatus& s) {
    return s.rejections + s.promotions > 0;
  });

  DriftStatus s = adapter.Status();
  EXPECT_GE(s.drift_events, 1u);
  EXPECT_EQ(s.cycles_started, 1u);
  EXPECT_EQ(s.rejections, 1u);
  EXPECT_EQ(s.promotions, 0u);
  EXPECT_LT(s.last_candidate_score, s.last_live_score);
  // No swap: generation and serving fingerprint are untouched, and further
  // triggers are suppressed by the backoff.
  EXPECT_EQ(s.model_generation, 1u);
  EXPECT_EQ(io::ModelFingerprint(*adapter.monitor()->model()), live_fp);
  EXPECT_GT(s.backoff_points_remaining, 0u);
  EXPECT_FALSE(s.drift_pending);
}

TEST_F(DriftTest, GatePromotesBetterCandidateAndSwaps) {
  CollectingSink downstream;
  DriftConfig dc = HairTrigger();
  // The incumbent is untrained; the candidate factory hands back a trained
  // model — the gate must promote it into live service.
  dc.candidate_factory = [](const core::Rl4Oasd&, const traj::Dataset&) {
    return TrainedClone();
  };
  DriftAdapter adapter(net_, FreshModel(777), {}, dc, &downstream);
  FeedUntil(&adapter, 120, [](const DriftStatus& s) {
    return s.rejections + s.promotions > 0;
  });

  DriftStatus s = adapter.Status();
  EXPECT_EQ(s.cycles_started, 1u);
  EXPECT_EQ(s.promotions, 1u);
  EXPECT_EQ(s.rejections, 0u);
  EXPECT_GE(s.last_candidate_score, s.last_live_score);
  EXPECT_GT(s.last_shadow_divergent_trips, 0u);
  // The swap is visible end to end: generation advanced and the serving
  // model is byte-identical to the promoted candidate.
  EXPECT_EQ(s.model_generation, 2u);
  EXPECT_EQ(io::ModelFingerprint(*adapter.monitor()->model()),
            io::ModelFingerprint(*model_));
  // Ingest kept flowing through the whole cycle: conservation holds.
  const FleetStats stats = adapter.monitor()->Stats();
  EXPECT_EQ(stats.trips_started,
            stats.trips_finished + stats.trips_evicted +
                static_cast<int64_t>(adapter.monitor()->ActiveTrips()));
}

TEST_F(DriftTest, ByteIdenticalCandidateShortCircuitsToRejection) {
  DriftConfig dc = HairTrigger();
  dc.candidate_factory = [](const core::Rl4Oasd& live, const traj::Dataset&) {
    auto cloned = io::CloneModel(net_, live);
    EXPECT_TRUE(cloned.ok());
    return std::shared_ptr<core::Rl4Oasd>(std::move(cloned).value());
  };
  DriftAdapter adapter(net_, TrainedClone(), {}, dc, nullptr);
  FeedUntil(&adapter, 120, [](const DriftStatus& s) {
    return s.rejections + s.promotions > 0;
  });

  DriftStatus s = adapter.Status();
  EXPECT_EQ(s.cycles_started, 1u);
  EXPECT_EQ(s.rejections, 1u);
  EXPECT_EQ(s.promotions, 0u);
  EXPECT_EQ(s.model_generation, 1u);
}

TEST_F(DriftTest, BackgroundLoopSurvivesConcurrentIngestAndEviction) {
  // The TSAN stress: a background worker draining, fine-tuning, shadow
  // gating, and hot-swapping while several threads push batched ingest and
  // an evictor yanks trips. No sleeps: the worker wakes on the harvest
  // condition variable and the destructor joins after a final drain.
  CollectingSink downstream;
  FleetConfig fleet;
  fleet.trip_timeout_s = 50.0;
  fleet.num_shards = 4;
  fleet.micro_batch = 8;
  DriftConfig dc;
  dc.window_points = 64;
  dc.reference_windows = 1;
  dc.cusum_k = -1.0;  // hair trigger: every tested window fires
  dc.cusum_h = 0.0;
  dc.min_buffer_trips = 8;
  dc.shadow_trips = 8;
  dc.fine_tune_max_samples = 4;
  dc.reject_backoff_points = 1000;  // allow repeated cycles under load
  dc.post_swap_cooldown_points = 0;
  dc.background = true;
  DriftAdapter adapter(net_, TrainedClone(), fleet, dc, &downstream);
  EXPECT_FALSE(adapter.Poll());  // the worker owns the loop

  constexpr int kThreads = 4;
  constexpr int kTripsPerThread = 8;
  std::atomic<int> started{0};
  std::atomic<bool> stop_evictor{false};
  std::thread evictor([&] {
    while (!stop_evictor.load()) {
      adapter.monitor()->EvictStale(1e12);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      std::vector<FleetPoint> batch;
      for (int k = 0; k < kTripsPerThread; ++k) {
        const auto& t =
            (*dataset_)[(static_cast<size_t>(th) * 17 +
                         static_cast<size_t>(k) * 5) %
                        dataset_->size()]
                .traj;
        if (t.edges.size() < 2) continue;
        const int64_t vid = th * 1000 + k;
        if (!adapter.monitor()->StartTrip(vid, t.sd(), t.start_time).ok()) {
          continue;
        }
        started.fetch_add(1);
        batch.clear();
        for (traj::EdgeId e : t.edges) {
          batch.push_back({vid, e, t.start_time});
          if (batch.size() == 16) {
            (void)adapter.monitor()->FeedBatch(batch);
            batch.clear();
          }
        }
        if (!batch.empty()) (void)adapter.monitor()->FeedBatch(batch);
        (void)adapter.monitor()->EndTrip(vid);  // NotFound if evicted
      }
    });
  }
  for (auto& th : threads) th.join();
  stop_evictor.store(true);
  evictor.join();
  adapter.monitor()->EvictStale(1e12);

  // Conservation and exactly-once delivery held across however many
  // fine-tune/swap cycles the worker managed to run.
  EXPECT_EQ(adapter.monitor()->ActiveTrips(), 0u);
  const FleetStats stats = adapter.monitor()->Stats();
  EXPECT_EQ(stats.trips_started, started.load());
  EXPECT_EQ(stats.trips_started, stats.trips_finished + stats.trips_evicted);
  EXPECT_EQ(stats.alerts_emitted,
            static_cast<int64_t>(downstream.NumAlerts()));
  EXPECT_EQ(stats.trips_finished,
            static_cast<int64_t>(downstream.NumFinished()));
  EXPECT_EQ(stats.trips_evicted,
            static_cast<int64_t>(downstream.NumEvicted()));
  const DriftStatus s = adapter.Status();
  EXPECT_LE(s.trips_harvested, static_cast<uint64_t>(stats.trips_finished));
  // The worker may be mid-cycle when status is sampled; it is a single
  // consumer, so at most one started cycle can be unresolved.
  const uint64_t resolved = s.promotions + s.rejections + s.cycle_errors;
  EXPECT_GE(s.cycles_started, resolved);
  EXPECT_LE(s.cycles_started - resolved, 1u);
}

}  // namespace
}  // namespace rl4oasd::serve
