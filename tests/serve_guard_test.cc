// Tests for the ingest input contract (serve/ingest_guard.h), the
// quarantine-based graceful-degradation path in serve::FleetMonitor, and
// the chaos-injection metamorphic suite (serve/chaos.h).
//
// The robustness contract under test:
//   * the guard classifies exactly one anomaly per point, in the documented
//     precedence order, and each class's repair does what the header says;
//   * single-mode chaos runs are *exactly* countable — the guard's
//     per-class counters equal the injector's ground truth;
//   * conservation identities survive arbitrary combined chaos
//     (trips: started == finished + evicted + active; points:
//     offered == processed + rejected + quarantine-dropped);
//   * chaos divergence is bounded per vehicle: a vehicle whose stream the
//     injector never touched produces the identical alert sequence;
//   * sync Feed and async Submit ingest stay equivalent point-for-point
//     under chaos, across shard counts, with quarantine active;
//   * quarantine state round-trips through fleet snapshots bit-identically;
//   * one skewed or negative client timestamp cannot make a live trip the
//     EvictStalest victim (regression: staleness follows the guard's
//     monotone clock, not the raw device clock).
// The CI ThreadSanitizer job runs this suite.
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "io/fleet_snapshot.h"
#include "serve/chaos.h"
#include "serve/fleet.h"
#include "serve/ingest_guard.h"
#include "test_util.h"
#include "traj/types.h"

namespace rl4oasd::serve {
namespace {

core::Rl4OasdConfig TinyConfig() {
  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  cfg.rsr.embed_dim = 16;
  cfg.rsr.nrf_dim = 8;
  cfg.rsr.hidden_dim = 16;
  cfg.asd.label_dim = 8;
  cfg.embedding.dim = 16;
  cfg.embedding.epochs = 1;
  cfg.pretrain_samples = 60;
  cfg.pretrain_epochs = 2;
  cfg.joint_samples = 120;
  cfg.epochs_per_traj = 1;
  return cfg;
}

IngestGuardConfig RepairAll() {
  IngestGuardConfig g;
  g.duplicate_policy = GuardPolicy::kRepair;
  g.out_of_order_policy = GuardPolicy::kRepair;
  g.skew_policy = GuardPolicy::kRepair;
  g.dropout_policy = GuardPolicy::kRepair;
  g.teleport_policy = GuardPolicy::kRepair;
  return g;
}

/// First edge provably NOT reachable from `from` within `hops` adjacency
/// hops — the same predicate the guard and the chaos injector share.
traj::EdgeId UnreachableFrom(const roadnet::RoadNetwork& net,
                             traj::EdgeId from, int hops) {
  for (size_t e = 0; e < net.NumEdges(); ++e) {
    const auto id = static_cast<traj::EdgeId>(e);
    if (id != from &&
        !IngestGuard::ReachableWithinHops(net, from, id, hops)) {
      return id;
    }
  }
  return roadnet::kInvalidEdge;
}

/// Records the full per-vehicle callback sequence — alerts, trip ends,
/// evictions, finalizations, AND quarantine entries — as readable strings,
/// so equivalence across ingest modes is one map comparison.
class GuardSequenceSink : public AlertSink {
 public:
  void OnAlert(const Alert& alert) override {
    Record(alert.vehicle_id, "alert[" + std::to_string(alert.range.begin) +
                                 "," + std::to_string(alert.range.end) + ")");
  }
  void OnTripEnd(int64_t vehicle_id,
                 const std::vector<uint8_t>& final_labels) override {
    Record(vehicle_id, "end:" + LabelString(final_labels));
  }
  void OnTripEvicted(int64_t vehicle_id, double /*trip_start_time*/,
                     const std::vector<uint8_t>& labels_so_far) override {
    Record(vehicle_id, "evicted:" + LabelString(labels_so_far));
  }
  void OnTripQuarantined(int64_t vehicle_id, double /*trip_start_time*/,
                         int64_t malformed_points) override {
    Record(vehicle_id, "quarantined:" + std::to_string(malformed_points));
  }

  std::map<int64_t, std::vector<std::string>> Take() {
    common::MutexLock lock(&mu_);
    return std::move(events_);
  }
  int64_t NumQuarantineEvents() const {
    common::MutexLock lock(&mu_);
    int64_t n = 0;
    for (const auto& [vid, seq] : events_) {
      for (const std::string& e : seq) {
        if (e.rfind("quarantined:", 0) == 0) ++n;
      }
    }
    return n;
  }

 private:
  static std::string LabelString(const std::vector<uint8_t>& labels) {
    std::string s;
    s.reserve(labels.size());
    for (uint8_t l : labels) s.push_back(l ? '1' : '0');
    return s;
  }
  void Record(int64_t vehicle_id, std::string event) {
    common::MutexLock lock(&mu_);
    events_[vehicle_id].push_back(std::move(event));
  }

  mutable common::Mutex mu_;
  std::map<int64_t, std::vector<std::string>> events_ RL4OASD_GUARDED_BY(mu_);
};

class GuardTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new roadnet::RoadNetwork(testing::SmallGrid());
    dataset_ = new traj::Dataset(testing::SmallDataset(*net_, 6, 0.12));
    model_ = new core::Rl4Oasd(net_, TinyConfig());
    model_->Fit(*dataset_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    delete net_;
    model_ = nullptr;
    dataset_ = nullptr;
    net_ = nullptr;
  }

  static std::vector<const traj::MapMatchedTrajectory*> PickTrips(
      size_t count) {
    std::vector<const traj::MapMatchedTrajectory*> picks;
    for (const auto& lt : dataset_->trajs()) {
      if (lt.traj.edges.size() >= 4) picks.push_back(&lt.traj);
      if (picks.size() == count) break;
    }
    return picks;
  }

  /// Round-robin interleaving at the paper's 2s sampling rate; the first
  /// point sits `first_offset` seconds after the trip's start time (use a
  /// positive offset when a dropped first point must still expose a
  /// detectable gap against the StartTrip-seeded monotone clock).
  static std::vector<FleetPoint> CleanStream(
      const std::vector<const traj::MapMatchedTrajectory*>& picks,
      double first_offset = 0.0) {
    std::vector<FleetPoint> points;
    size_t longest = 0;
    for (const auto* t : picks) longest = std::max(longest, t->edges.size());
    for (size_t i = 0; i < longest; ++i) {
      for (size_t v = 0; v < picks.size(); ++v) {
        if (i < picks[v]->edges.size()) {
          points.push_back({static_cast<int64_t>(v), picks[v]->edges[i],
                            picks[v]->start_time + first_offset +
                                2.0 * static_cast<double>(i)});
        }
      }
    }
    return points;
  }

  static void StartAll(
      FleetMonitor* monitor,
      const std::vector<const traj::MapMatchedTrajectory*>& picks) {
    for (size_t v = 0; v < picks.size(); ++v) {
      ASSERT_TRUE(monitor
                      ->StartTrip(static_cast<int64_t>(v), picks[v]->sd(),
                                  picks[v]->start_time)
                      .ok());
    }
  }

  struct ChaosRunResult {
    ChaosCounts counts;
    std::unordered_map<int64_t, int64_t> perturbed;
    FleetStats stats;
    std::map<int64_t, std::vector<std::string>> events;
  };

  /// Perturbs `clean` with `spec`, replays it through a fresh monitor over
  /// the shared model via the synchronous Feed path, and returns the
  /// injector's ground truth next to the monitor's accounting.
  static ChaosRunResult RunPerturbed(
      const ChaosSpec& spec, const IngestGuardConfig& guard,
      const std::vector<const traj::MapMatchedTrajectory*>& picks,
      std::span<const FleetPoint> clean) {
    ChaosInjector injector(spec, net_);
    const std::vector<FleetPoint> pts = injector.Perturb(clean);
    GuardSequenceSink sink;
    FleetConfig cfg;
    cfg.guard = guard;
    FleetMonitor monitor(model_, cfg, &sink);
    StartAll(&monitor, picks);
    for (const FleetPoint& p : pts) {
      (void)monitor.Feed(p.vehicle_id, p.edge, p.timestamp);
    }
    for (size_t v = 0; v < picks.size(); ++v) {
      (void)monitor.EndTrip(static_cast<int64_t>(v));
    }
    ChaosRunResult r;
    r.counts = injector.counts();
    r.perturbed = injector.perturbed_by_vehicle();
    r.stats = monitor.Stats();
    r.events = sink.Take();
    return r;
  }

  static roadnet::RoadNetwork* net_;
  static traj::Dataset* dataset_;
  static core::Rl4Oasd* model_;
};

roadnet::RoadNetwork* GuardTest::net_ = nullptr;
traj::Dataset* GuardTest::dataset_ = nullptr;
core::Rl4Oasd* GuardTest::model_ = nullptr;

// ---------------------------------------------------------------------------
// IngestGuard unit tests

TEST_F(GuardTest, ClassifiesInPrecedenceOrder) {
  const IngestGuard guard(IngestGuardConfig{}, net_);
  const auto* t = PickTrips(1)[0];
  IngestGuard::State s;
  s.mono_ts = 1000.0;

  // Clean first point.
  auto d = guard.Check(&s, t->edges[0], 1000.0);
  EXPECT_EQ(d.anomaly, IngestGuard::Anomaly::kNone);
  EXPECT_TRUE(d.accept);
  EXPECT_EQ(d.timestamp, 1000.0);

  // Identical retransmit: duplicate.
  d = guard.Check(&s, t->edges[0], 1000.0);
  EXPECT_EQ(d.anomaly, IngestGuard::Anomaly::kDuplicate);

  // Regressing timestamp: out-of-order beats any spatial verdict, and the
  // reported timestamp never regresses below the monotone clock.
  d = guard.Check(&s, t->edges[1], 998.0);
  EXPECT_EQ(d.anomaly, IngestGuard::Anomaly::kOutOfOrder);
  EXPECT_EQ(d.timestamp, 1000.0);

  // Forward jump past the skew tolerance: clock skew (pass-through lets it
  // advance the clock).
  d = guard.Check(&s, t->edges[2], 1000.0 + 3601.0);
  EXPECT_EQ(d.anomaly, IngestGuard::Anomaly::kClockSkew);

  // Forward gap above dropout_gap_s but within skew tolerance: dropout.
  d = guard.Check(&s, t->edges[3], 4601.0 + 100.0);
  EXPECT_EQ(d.anomaly, IngestGuard::Anomaly::kDropout);

  // An unreachable edge with a credible timestamp: teleport.
  const traj::EdgeId far = UnreachableFrom(*net_, t->edges[3], 2);
  ASSERT_NE(far, roadnet::kInvalidEdge);
  d = guard.Check(&s, far, 4703.0);
  EXPECT_EQ(d.anomaly, IngestGuard::Anomaly::kTeleport);

  // An out-of-range edge id is rejected under every policy — even the
  // observe-only default.
  d = guard.Check(&s, static_cast<traj::EdgeId>(net_->NumEdges()), 4705.0);
  EXPECT_EQ(d.anomaly, IngestGuard::Anomaly::kInvalidEdge);
  EXPECT_FALSE(d.accept);
}

TEST_F(GuardTest, RepairsFollowTheContract) {
  const IngestGuard guard(RepairAll(), net_);
  const auto* t = PickTrips(1)[0];
  IngestGuard::State s;
  s.mono_ts = 0.0;

  ASSERT_TRUE(guard.Check(&s, t->edges[0], 2.0).accept);
  ASSERT_TRUE(guard.Check(&s, t->edges[1], 4.0).accept);

  // Duplicate: the copy is dropped; clock and position are untouched.
  auto d = guard.Check(&s, t->edges[1], 4.0);
  EXPECT_FALSE(d.accept);
  EXPECT_EQ(s.position, t->edges[1]);
  EXPECT_EQ(s.mono_ts, 4.0);

  // Out-of-order: accepted with the timestamp clamped to "now"; the
  // position does not move to the historical segment.
  d = guard.Check(&s, t->edges[2], 1.0);
  EXPECT_TRUE(d.accept);
  EXPECT_TRUE(d.repaired);
  EXPECT_EQ(d.timestamp, 4.0);
  EXPECT_EQ(s.position, t->edges[1]);

  // Clock skew: accepted, clamped one sampling interval past the clock.
  d = guard.Check(&s, t->edges[2], 4.0 + 7200.0);
  EXPECT_TRUE(d.accept);
  EXPECT_TRUE(d.repaired);
  EXPECT_EQ(d.timestamp, 6.0);
  EXPECT_EQ(s.position, t->edges[2]);

  // Dropout: the post-gap point is credible and accepted unchanged.
  d = guard.Check(&s, t->edges[3], 6.0 + 100.0);
  EXPECT_TRUE(d.accept);
  EXPECT_FALSE(d.repaired);
  EXPECT_EQ(d.timestamp, 106.0);

  // Teleport: nothing to clamp onto — dropped, position kept.
  const traj::EdgeId far = UnreachableFrom(*net_, s.position, 2);
  ASSERT_NE(far, roadnet::kInvalidEdge);
  d = guard.Check(&s, far, 108.0);
  EXPECT_FALSE(d.accept);
  EXPECT_EQ(s.position, t->edges[3]);
  EXPECT_EQ(d.timestamp, 106.0);
}

TEST_F(GuardTest, ReachableWithinHopsIsABoundedBfs) {
  const traj::EdgeId e0 = 0;
  EXPECT_TRUE(IngestGuard::ReachableWithinHops(*net_, e0, e0, 0));
  const auto& succ = net_->NextEdges(e0);
  ASSERT_FALSE(succ.empty());
  EXPECT_TRUE(IngestGuard::ReachableWithinHops(*net_, e0, succ[0], 1));
  const auto& succ2 = net_->NextEdges(succ[0]);
  ASSERT_FALSE(succ2.empty());
  EXPECT_TRUE(IngestGuard::ReachableWithinHops(*net_, e0, succ2[0], 2));
  const traj::EdgeId far = UnreachableFrom(*net_, e0, 3);
  ASSERT_NE(far, roadnet::kInvalidEdge);
  EXPECT_FALSE(IngestGuard::ReachableWithinHops(*net_, e0, far, 3));
}

TEST_F(GuardTest, HealthScoreTracksTheStrikeBucket) {
  IngestGuardConfig cfg = RepairAll();
  cfg.malformed_budget = 4;
  const IngestGuard guard(cfg, net_);
  const auto* t = PickTrips(1)[0];
  IngestGuard::State s;
  ASSERT_TRUE(guard.Check(&s, t->edges[0], 2.0).accept);
  EXPECT_EQ(guard.HealthScore(s), 1.0);
  const traj::EdgeId far = UnreachableFrom(*net_, t->edges[0], 2);
  ASSERT_NE(far, roadnet::kInvalidEdge);
  (void)guard.Check(&s, far, 4.0);
  EXPECT_EQ(guard.HealthScore(s), 0.75);
  (void)guard.Check(&s, far, 6.0);
  EXPECT_EQ(guard.HealthScore(s), 0.5);
  // A clean point leaks one strike back out.
  ASSERT_TRUE(guard.Check(&s, t->edges[1], 8.0).accept);
  EXPECT_EQ(guard.HealthScore(s), 0.75);
}

TEST_F(GuardTest, StateRoundTripsAndRejectsLies) {
  IngestGuard::State s;
  s.mono_ts = 123.5;
  s.last_arrival_ts = 121.0;
  s.last_arrival_edge = 7;
  s.position = 9;
  s.strikes = 3;
  s.clean_streak = 1;
  s.quarantine_points = 5;
  s.malformed_total = 11;
  s.has_arrival = true;
  s.quarantined = true;

  BinaryWriter w;
  s.ExportState(&w);

  IngestGuard::State r;
  BinaryReader reader(w.buffer());
  ASSERT_TRUE(r.ImportState(&reader, net_->NumEdges()).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(r.mono_ts, s.mono_ts);
  EXPECT_EQ(r.last_arrival_edge, s.last_arrival_edge);
  EXPECT_EQ(r.position, s.position);
  EXPECT_EQ(r.strikes, s.strikes);
  EXPECT_EQ(r.quarantine_points, s.quarantine_points);
  EXPECT_EQ(r.malformed_total, s.malformed_total);
  EXPECT_TRUE(r.quarantined);

  // A flag byte outside {0, 1} is a lie, not UB.
  std::string bytes = w.buffer();
  bytes[bytes.size() - 1] = 2;
  BinaryReader bad_flag(std::move(bytes));
  EXPECT_FALSE(r.ImportState(&bad_flag, net_->NumEdges()).ok());

  // An edge id past the serving network is rejected the same way.
  IngestGuard::State hostile = s;
  hostile.position = static_cast<traj::EdgeId>(net_->NumEdges());
  BinaryWriter hw;
  hostile.ExportState(&hw);
  BinaryReader hr(hw.buffer());
  EXPECT_FALSE(r.ImportState(&hr, net_->NumEdges()).ok());
}

// ---------------------------------------------------------------------------
// Monitor-level guard behavior

TEST_F(GuardTest, StaleTimestampCannotMakeTripTheEvictionVictim) {
  // Regression: Feed used to store the raw client timestamp into
  // last_update, so a single negative (or wildly regressing) timestamp
  // made its trip the EvictStalest victim even though the vehicle was the
  // *freshest* stream in the fleet. Staleness now follows the guard's
  // monotone per-trip clock — under the observe-only default config, so
  // the fix is unconditional.
  const auto picks = PickTrips(3);
  ASSERT_EQ(picks.size(), 3u);
  CollectingSink sink;
  FleetConfig cfg;
  cfg.max_active_trips = 2;
  FleetMonitor monitor(model_, cfg, &sink);

  ASSERT_TRUE(monitor.StartTrip(1, picks[0]->sd(), 1000.0).ok());
  ASSERT_TRUE(monitor.Feed(1, picks[0]->edges[0], 1000.0).ok());
  ASSERT_TRUE(monitor.Feed(1, picks[0]->edges[1], 1002.0).ok());
  ASSERT_TRUE(monitor.StartTrip(2, picks[1]->sd(), 500.0).ok());
  ASSERT_TRUE(monitor.Feed(2, picks[1]->edges[0], 500.0).ok());

  // The poison: vehicle 1's device clock steps to a huge negative value.
  // Pass-through accepts the point; the trip's staleness must not regress.
  ASSERT_TRUE(monitor.Feed(1, picks[0]->edges[2], -1e9).ok());

  // Admission beyond the cap evicts the stalest trip: that must be the
  // genuinely oldest vehicle 2 (last update 500), not the poisoned 1.
  ASSERT_TRUE(monitor.StartTrip(3, picks[2]->sd(), 2000.0).ok());
  const auto evicted = sink.TakeEvicted();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].first, 2);
  EXPECT_TRUE(monitor.Feed(1, picks[0]->edges[3], 1004.0).ok());
}

TEST_F(GuardTest, QuarantineLifecycleFiresExactlyOnceAndRecovers) {
  const auto picks = PickTrips(1);
  const auto* t = picks[0];
  CollectingSink sink;
  FleetConfig cfg;
  cfg.guard = RepairAll();
  cfg.guard.malformed_budget = 2;
  cfg.guard.quarantine_recovery_points = 3;
  cfg.guard.quarantine_evict_points = 0;  // never evict: recovery only
  FleetMonitor monitor(model_, cfg, &sink);
  ASSERT_TRUE(monitor.StartTrip(7, t->sd(), 0.0).ok());
  ASSERT_TRUE(monitor.Feed(7, t->edges[0], 2.0).ok());
  ASSERT_TRUE(monitor.Feed(7, t->edges[1], 4.0).ok());

  const traj::EdgeId far = UnreachableFrom(*net_, t->edges[1], 2);
  ASSERT_NE(far, roadnet::kInvalidEdge);

  // Two teleports are repaired away (strikes 1, 2); the third blows the
  // budget and tips the trip into quarantine.
  EXPECT_EQ(monitor.Feed(7, far, 6.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(monitor.Feed(7, far, 8.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(monitor.Feed(7, far, 10.0).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(sink.NumQuarantined(), 1u);
  auto quarantined = monitor.TripQuarantined(7);
  ASSERT_TRUE(quarantined.ok());
  EXPECT_TRUE(*quarantined);
  auto health = monitor.TripHealth(7);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, 0.0);

  // While quarantined, even garbage is observed-and-dropped.
  EXPECT_EQ(monitor.Feed(7, far, 12.0).status().code(),
            StatusCode::kResourceExhausted);

  // Three consecutive clean points end the quarantine; the first two are
  // validated but dropped, the third (the recovery point) is fed.
  EXPECT_EQ(monitor.Feed(7, t->edges[2], 14.0).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(monitor.Feed(7, t->edges[3], 16.0).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(monitor.Feed(7, t->edges[4], 18.0).ok());
  quarantined = monitor.TripQuarantined(7);
  ASSERT_TRUE(quarantined.ok());
  EXPECT_FALSE(*quarantined);
  EXPECT_EQ(sink.NumQuarantined(), 1u);  // one episode, one event

  ASSERT_TRUE(monitor.Feed(7, t->edges[5], 20.0).ok());
  ASSERT_TRUE(monitor.EndTrip(7).ok());

  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.guard_teleports, 4);
  EXPECT_EQ(stats.trips_quarantined, 1);
  EXPECT_EQ(stats.trips_recovered, 1);
  EXPECT_EQ(stats.quarantine_evictions, 0);
  EXPECT_EQ(stats.points_quarantine_dropped, 4);
  // Disposition partition: every offered point lands in exactly one bucket.
  EXPECT_EQ(stats.points_processed + stats.points_rejected +
                stats.points_quarantine_dropped,
            10);
}

TEST_F(GuardTest, QuarantineEvictsAfterItsPointBudget) {
  const auto picks = PickTrips(1);
  const auto* t = picks[0];
  CollectingSink sink;
  FleetConfig cfg;
  cfg.guard = RepairAll();
  cfg.guard.malformed_budget = 1;
  cfg.guard.quarantine_recovery_points = 100;
  cfg.guard.quarantine_evict_points = 3;
  FleetMonitor monitor(model_, cfg, &sink);
  ASSERT_TRUE(monitor.StartTrip(9, t->sd(), 0.0).ok());
  ASSERT_TRUE(monitor.Feed(9, t->edges[0], 2.0).ok());

  const traj::EdgeId far = UnreachableFrom(*net_, t->edges[0], 2);
  ASSERT_NE(far, roadnet::kInvalidEdge);
  EXPECT_EQ(monitor.Feed(9, far, 4.0).status().code(),
            StatusCode::kInvalidArgument);  // strike 1: repaired away
  EXPECT_EQ(monitor.Feed(9, far, 6.0).status().code(),
            StatusCode::kResourceExhausted);  // strike 2 > budget: quarantine
  EXPECT_EQ(sink.NumQuarantined(), 1u);

  // Three more garbage points exhaust the quarantine budget; the last one
  // evicts the trip with the usual silent-eviction guarantees.
  EXPECT_EQ(monitor.Feed(9, far, 8.0).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(monitor.Feed(9, far, 10.0).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(monitor.Feed(9, far, 12.0).status().code(),
            StatusCode::kResourceExhausted);

  EXPECT_EQ(monitor.Feed(9, t->edges[1], 14.0).status().code(),
            StatusCode::kNotFound);  // the trip is gone
  EXPECT_EQ(sink.NumEvicted(), 1u);
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.quarantine_evictions, 1);
  EXPECT_EQ(stats.trips_evicted, 1);
  EXPECT_EQ(monitor.ActiveTrips(), 0u);
}

// ---------------------------------------------------------------------------
// Metamorphic chaos suite: single-mode runs are exactly countable

TEST_F(GuardTest, CleanStreamsAreGuardClean) {
  // The premise under every exactness assertion below: an unperturbed
  // dataset replay triggers nothing — generated trips are connected paths
  // sampled on the guard's nominal interval.
  const auto picks = PickTrips(8);
  ASSERT_GE(picks.size(), 6u);
  const auto clean = CleanStream(picks);
  ChaosSpec spec;  // all probabilities zero: identity perturbation
  const auto r = RunPerturbed(spec, RepairAll(), picks, clean);
  EXPECT_EQ(r.counts.emitted, r.counts.input);
  EXPECT_EQ(r.stats.guard_duplicates, 0);
  EXPECT_EQ(r.stats.guard_out_of_order, 0);
  EXPECT_EQ(r.stats.guard_clock_skew, 0);
  EXPECT_EQ(r.stats.guard_dropout_gaps, 0);
  EXPECT_EQ(r.stats.guard_teleports, 0);
  EXPECT_EQ(r.stats.guard_invalid_edges, 0);
  EXPECT_EQ(r.stats.points_rejected, 0);
  EXPECT_EQ(r.stats.points_processed, r.counts.emitted);
}

TEST_F(GuardTest, DuplicateChaosIsExactlyCounted) {
  const auto picks = PickTrips(8);
  const auto clean = CleanStream(picks);
  ChaosSpec spec;
  spec.dup_prob = 0.25;
  spec.seed = 17;
  const auto r = RunPerturbed(spec, RepairAll(), picks, clean);
  ASSERT_GT(r.counts.duplicated, 0);
  EXPECT_EQ(r.stats.guard_duplicates, r.counts.duplicated);
  EXPECT_EQ(r.stats.points_rejected, r.counts.duplicated);  // copies dropped
  EXPECT_EQ(r.stats.guard_out_of_order, 0);
  EXPECT_EQ(r.stats.guard_clock_skew, 0);
  EXPECT_EQ(r.stats.guard_teleports, 0);
  EXPECT_EQ(r.stats.points_processed,
            r.counts.emitted - r.counts.duplicated);
}

TEST_F(GuardTest, ReorderChaosIsExactlyCounted) {
  const auto picks = PickTrips(8);
  const auto clean = CleanStream(picks);
  ChaosSpec spec;
  spec.reorder_prob = 0.25;
  spec.reorder_window = 3;
  spec.seed = 23;
  // Pass-through: displaced points are observed, not dropped, so the
  // out-of-order count is pure observation. (Displacement also punches
  // spatial holes, so teleports may tick too — not asserted.)
  const auto r = RunPerturbed(spec, IngestGuardConfig{}, picks, clean);
  ASSERT_GT(r.counts.reordered, 0);
  EXPECT_EQ(r.stats.guard_out_of_order, r.counts.reordered);
  EXPECT_EQ(r.stats.guard_duplicates, 0);
  EXPECT_EQ(r.stats.guard_clock_skew, 0);
  EXPECT_EQ(r.stats.points_rejected, 0);
  EXPECT_EQ(r.stats.points_processed, r.counts.emitted);
}

TEST_F(GuardTest, SkewChaosIsExactlyCounted) {
  const auto picks = PickTrips(8);
  const auto clean = CleanStream(picks);
  ChaosSpec spec;
  spec.skew_prob = 0.2;
  spec.seed = 31;
  // Repair clamps each skewed clock to one sampling interval past the
  // monotone clock, so the stream re-synchronizes immediately and the
  // following clean point is NOT misclassified (kPassThrough would let the
  // jumped clock cascade into out-of-order verdicts downstream).
  const auto r = RunPerturbed(spec, RepairAll(), picks, clean);
  ASSERT_GT(r.counts.skewed, 0);
  EXPECT_EQ(r.stats.guard_clock_skew, r.counts.skewed);
  EXPECT_EQ(r.stats.points_repaired, r.counts.skewed);
  EXPECT_EQ(r.stats.guard_duplicates, 0);
  EXPECT_EQ(r.stats.guard_out_of_order, 0);
  EXPECT_EQ(r.stats.guard_dropout_gaps, 0);
  EXPECT_EQ(r.stats.guard_teleports, 0);
  EXPECT_EQ(r.stats.points_processed, r.counts.emitted);
}

TEST_F(GuardTest, TeleportChaosIsExactlyCounted) {
  const auto picks = PickTrips(8);
  const auto clean = CleanStream(picks);
  ChaosSpec spec;
  spec.teleport_prob = 0.08;
  spec.teleport_min_hops = 2;  // matches the guard's hop bound
  // Exactness needs *isolated* teleports: repair drops the bogus point and
  // keeps the position on the last clean edge, so a lone teleport leaves
  // the next clean point two trajectory hops from the position — within
  // the guard's hop bound, resynchronizing immediately. Two teleports in a
  // row punch a three-hop hole and the following clean point would be
  // (correctly, from the guard's view) flagged too. Search deterministically
  // for the first seed whose stream has teleports but no same-vehicle
  // adjacent pair; teleport-only perturbation is 1:1 with the clean stream,
  // so a diff recovers exactly which points were teleported.
  std::unordered_map<int64_t, std::vector<traj::EdgeId>> clean_edges;
  for (const FleetPoint& p : clean) {
    clean_edges[p.vehicle_id].push_back(p.edge);
  }
  bool found_seed = false;
  for (uint64_t seed = 1; seed <= 64 && !found_seed; ++seed) {
    spec.seed = seed;
    ChaosInjector probe(spec, net_);
    const auto pts = probe.Perturb(clean);
    if (probe.counts().teleported == 0) continue;
    std::unordered_map<int64_t, int> last_was_teleport;
    std::unordered_map<int64_t, size_t> cursor;
    bool isolated = true;
    for (const FleetPoint& p : pts) {
      const size_t i = cursor[p.vehicle_id]++;
      const bool teleported = clean_edges[p.vehicle_id][i] != p.edge;
      if (teleported && last_was_teleport[p.vehicle_id]) {
        isolated = false;
        break;
      }
      last_was_teleport[p.vehicle_id] = teleported ? 1 : 0;
    }
    found_seed = isolated;
  }
  ASSERT_TRUE(found_seed) << "no seed in [1, 64] yields isolated teleports";
  const auto r = RunPerturbed(spec, RepairAll(), picks, clean);
  ASSERT_GT(r.counts.teleported, 0);
  EXPECT_EQ(r.stats.guard_teleports, r.counts.teleported);
  EXPECT_EQ(r.stats.points_rejected, r.counts.teleported);
  EXPECT_EQ(r.stats.guard_duplicates, 0);
  EXPECT_EQ(r.stats.guard_out_of_order, 0);
  EXPECT_EQ(r.stats.guard_clock_skew, 0);
  EXPECT_EQ(r.stats.guard_dropout_gaps, 0);
  EXPECT_EQ(r.stats.points_processed,
            r.counts.emitted - r.counts.teleported);
}

TEST_F(GuardTest, DropoutChaosIsExactlyCounted) {
  const auto picks = PickTrips(8);
  // First point one interval after StartTrip, so even a dropped *first*
  // point exposes a detectable gap against the seeded monotone clock.
  const auto clean = CleanStream(picks, /*first_offset=*/2.0);
  ChaosSpec spec;
  spec.drop_prob = 0.2;
  spec.seed = 47;
  IngestGuardConfig g = RepairAll();
  // The dataset samples every 2s; any gap above one lost point (4s) is a
  // dropout. Precedence puts dropout before teleport, so the spatial hole
  // a drop leaves never double-counts.
  g.dropout_gap_s = 3.0;
  const auto r = RunPerturbed(spec, g, picks, clean);
  ASSERT_GT(r.counts.drop_gaps, 0);
  EXPECT_EQ(r.stats.guard_dropout_gaps, r.counts.drop_gaps);
  EXPECT_EQ(r.stats.guard_teleports, 0);
  EXPECT_EQ(r.stats.guard_duplicates, 0);
  EXPECT_EQ(r.stats.guard_out_of_order, 0);
  EXPECT_EQ(r.stats.guard_clock_skew, 0);
  EXPECT_EQ(r.stats.points_rejected, 0);  // post-gap points are credible
  EXPECT_EQ(r.stats.points_processed, r.counts.emitted);
}

// ---------------------------------------------------------------------------
// Combined chaos: conservation, quarantine accounting, bounded divergence

TEST_F(GuardTest, CombinedChaosConservesAndBoundsDivergence) {
  const auto picks = PickTrips(12);
  ASSERT_GE(picks.size(), 8u);
  const auto clean = CleanStream(picks);
  IngestGuardConfig g = RepairAll();
  g.malformed_budget = 3;
  g.quarantine_recovery_points = 4;
  g.quarantine_evict_points = 64;

  // Reference: the same guard config over the untouched stream.
  ChaosSpec identity;
  const auto ref = RunPerturbed(identity, g, picks, clean);

  ChaosSpec spec;
  spec.drop_prob = 0.03;
  spec.dup_prob = 0.04;
  spec.reorder_prob = 0.03;
  spec.reorder_window = 3;
  spec.skew_prob = 0.02;
  spec.teleport_prob = 0.05;
  spec.seed = 11;
  const auto r = RunPerturbed(spec, g, picks, clean);

  // Trip conservation (every trip was EndTrip'd or quarantine-evicted).
  EXPECT_EQ(r.stats.trips_started,
            r.stats.trips_finished + r.stats.trips_evicted);
  // This spec is mild enough that no trip burns 64 quarantine points, so
  // every offered point found a live trip...
  ASSERT_EQ(r.stats.quarantine_evictions, 0);
  // ...and the disposition partition holds to the point: offered ==
  // processed + rejected + quarantine-dropped.
  EXPECT_EQ(r.counts.emitted, r.stats.points_processed +
                                  r.stats.points_rejected +
                                  r.stats.points_quarantine_dropped);
  // Exactly-once quarantine notification: sink events == counted episodes.
  int64_t quarantine_events = 0;
  for (const auto& [vid, seq] : r.events) {
    for (const std::string& e : seq) {
      if (e.rfind("quarantined:", 0) == 0) ++quarantine_events;
    }
  }
  EXPECT_EQ(quarantine_events, r.stats.trips_quarantined);

  // Bounded divergence: a vehicle the injector never touched must produce
  // the identical event sequence as the clean run.
  size_t untouched = 0;
  for (size_t v = 0; v < picks.size(); ++v) {
    const int64_t vid = static_cast<int64_t>(v);
    const auto it = r.perturbed.find(vid);
    if (it != r.perturbed.end() && it->second > 0) continue;
    ++untouched;
    const auto expected = ref.events.find(vid);
    const auto actual = r.events.find(vid);
    ASSERT_NE(expected, ref.events.end());
    ASSERT_NE(actual, r.events.end());
    EXPECT_EQ(actual->second, expected->second) << "vehicle " << vid;
  }
  // The spec is mild enough that the assertion is not vacuous.
  EXPECT_GT(untouched, 0u);
}

TEST_F(GuardTest, SyncAndAsyncIngestAgreeUnderChaosAcrossShards) {
  // The acceptance criterion: the metamorphic suite must hold for the
  // synchronous Feed path AND the async Submit path, with quarantine
  // active, across shard counts — the guard lives below both, applied
  // identically on the lane-drain FeedBatch path.
  const auto picks = PickTrips(10);
  ASSERT_GE(picks.size(), 8u);
  const auto clean = CleanStream(picks);
  ChaosSpec spec;
  spec.drop_prob = 0.02;
  spec.dup_prob = 0.04;
  spec.reorder_prob = 0.03;
  spec.skew_prob = 0.02;
  spec.teleport_prob = 0.08;
  spec.seed = 5;
  ChaosInjector injector(spec, net_);
  const std::vector<FleetPoint> pts = injector.Perturb(clean);

  IngestGuardConfig g = RepairAll();
  g.malformed_budget = 1;
  g.quarantine_recovery_points = 2;
  g.quarantine_evict_points = 8;

  // Synchronous reference.
  GuardSequenceSink ref_sink;
  FleetConfig ref_cfg;
  ref_cfg.guard = g;
  FleetMonitor ref(model_, ref_cfg, &ref_sink);
  StartAll(&ref, picks);
  for (const FleetPoint& p : pts) {
    (void)ref.Feed(p.vehicle_id, p.edge, p.timestamp);
  }
  for (size_t v = 0; v < picks.size(); ++v) {
    (void)ref.EndTrip(static_cast<int64_t>(v));
  }
  const auto expected = ref_sink.Take();
  const FleetStats ref_stats = ref.Stats();
  // The spec is hot enough that quarantine actually exercises.
  ASSERT_GT(ref_stats.trips_quarantined, 0);

  for (const size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    GuardSequenceSink sink;
    FleetConfig cfg;
    cfg.guard = g;
    cfg.num_shards = shards;
    cfg.ingest_workers = shards;
    cfg.micro_batch = 8;
    cfg.async_alerts = true;
    FleetMonitor monitor(model_, cfg, &sink);
    StartAll(&monitor, picks);
    for (const FleetPoint& p : pts) {
      ASSERT_TRUE(monitor.Submit(p).ok());
    }
    for (size_t v = 0; v < picks.size(); ++v) {
      ASSERT_TRUE(monitor.SubmitEndTrip(static_cast<int64_t>(v)).ok());
    }
    monitor.Quiesce();

    EXPECT_EQ(sink.Take(), expected) << "shards " << shards;
    const FleetStats stats = monitor.Stats();
    EXPECT_EQ(stats.points_processed, ref_stats.points_processed);
    EXPECT_EQ(stats.guard_duplicates, ref_stats.guard_duplicates);
    EXPECT_EQ(stats.guard_out_of_order, ref_stats.guard_out_of_order);
    EXPECT_EQ(stats.guard_clock_skew, ref_stats.guard_clock_skew);
    EXPECT_EQ(stats.guard_dropout_gaps, ref_stats.guard_dropout_gaps);
    EXPECT_EQ(stats.guard_teleports, ref_stats.guard_teleports);
    EXPECT_EQ(stats.points_repaired, ref_stats.points_repaired);
    EXPECT_EQ(stats.points_rejected, ref_stats.points_rejected);
    EXPECT_EQ(stats.points_quarantine_dropped,
              ref_stats.points_quarantine_dropped);
    EXPECT_EQ(stats.trips_quarantined, ref_stats.trips_quarantined);
    EXPECT_EQ(stats.trips_recovered, ref_stats.trips_recovered);
    EXPECT_EQ(stats.quarantine_evictions, ref_stats.quarantine_evictions);
    EXPECT_EQ(stats.trips_finished, ref_stats.trips_finished);
    EXPECT_EQ(stats.trips_evicted, ref_stats.trips_evicted);
  }
}

// ---------------------------------------------------------------------------
// Durability: quarantine state rides fleet snapshots

TEST_F(GuardTest, QuarantineStateSnapshotsBitIdentically) {
  const auto picks = PickTrips(4);
  ASSERT_EQ(picks.size(), 4u);
  FleetConfig cfg;
  cfg.guard = RepairAll();
  cfg.guard.malformed_budget = 1;
  cfg.guard.quarantine_recovery_points = 3;
  cfg.guard.quarantine_evict_points = 0;
  CollectingSink sink;
  FleetMonitor monitor(model_, cfg, &sink);
  StartAll(&monitor, picks);
  for (size_t v = 0; v < picks.size(); ++v) {
    ASSERT_TRUE(monitor
                    .Feed(static_cast<int64_t>(v), picks[v]->edges[0],
                          picks[v]->start_time)
                    .ok());
    ASSERT_TRUE(monitor
                    .Feed(static_cast<int64_t>(v), picks[v]->edges[1],
                          picks[v]->start_time + 2.0)
                    .ok());
  }
  // Quarantine vehicle 0 mid-stream.
  const traj::EdgeId far = UnreachableFrom(*net_, picks[0]->edges[1], 2);
  ASSERT_NE(far, roadnet::kInvalidEdge);
  (void)monitor.Feed(0, far, picks[0]->start_time + 4.0);
  (void)monitor.Feed(0, far, picks[0]->start_time + 6.0);
  auto quarantined = monitor.TripQuarantined(0);
  ASSERT_TRUE(quarantined.ok());
  ASSERT_TRUE(*quarantined);

  BinaryWriter snap;
  ASSERT_TRUE(monitor.Snapshot(&snap, "quarantine").ok());

  // The model-free inspector sees the quarantine.
  const std::string path =
      ::testing::TempDir() + "/rl4oasd_guard_snapshot_test.snap";
  ASSERT_TRUE(snap.WriteToFile(path).ok());
  auto desc = io::DescribeFleetSnapshot(path);
  ASSERT_TRUE(desc.ok()) << desc.status().ToString();
  EXPECT_EQ(desc->quarantined_trips, 1u);
  EXPECT_EQ(desc->trips_quarantined, 1);
  bool found = false;
  for (const auto& trip : desc->trips) {
    if (trip.vehicle_id == 0) {
      EXPECT_TRUE(trip.quarantined);
      found = true;
    } else {
      EXPECT_FALSE(trip.quarantined);
    }
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());

  // Restore into a fresh monitor; re-snapshotting reproduces the original
  // bytes exactly (the acceptance bar: guard state is part of the trip's
  // durable identity, not an approximation of it).
  CollectingSink resumed_sink;
  FleetMonitor resumed(model_, cfg, &resumed_sink);
  BinaryReader reader(snap.buffer());
  ASSERT_TRUE(resumed.Restore(&reader).ok());
  BinaryWriter snap2;
  ASSERT_TRUE(resumed.Snapshot(&snap2, "quarantine").ok());
  EXPECT_EQ(snap.buffer(), snap2.buffer());

  // The restored fleet resumes mid-quarantine: still dropping, and the
  // recovery streak picks up where it left off.
  quarantined = resumed.TripQuarantined(0);
  ASSERT_TRUE(quarantined.ok());
  EXPECT_TRUE(*quarantined);
  EXPECT_EQ(resumed.Feed(0, picks[0]->edges[2], picks[0]->start_time + 8.0)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(resumed.Feed(0, picks[0]->edges[3], picks[0]->start_time + 10.0)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(
      resumed.Feed(0, picks[0]->edges[4], picks[0]->start_time + 12.0).ok());
  quarantined = resumed.TripQuarantined(0);
  ASSERT_TRUE(quarantined.ok());
  EXPECT_FALSE(*quarantined);
  EXPECT_EQ(resumed.Stats().trips_recovered, 1);
}

// ---------------------------------------------------------------------------
// Concurrency: guard + quarantine under the async pipeline (CI TSAN job)

TEST_F(GuardTest, GuardAndQuarantineStressConserves) {
  // Producers push deterministic per-vehicle streams salted with teleports
  // (every 4th point) through the async pipeline while an evictor yanks
  // trips, forcing quarantine entries, recoveries, quarantine evictions,
  // and staleness evictions to interleave. After the drain, every identity
  // must hold to the point.
  const auto picks = PickTrips(6);
  ASSERT_GE(picks.size(), 4u);
  FleetConfig cfg;
  cfg.guard = RepairAll();
  cfg.guard.malformed_budget = 1;
  cfg.guard.quarantine_recovery_points = 2;
  cfg.guard.quarantine_evict_points = 6;
  cfg.trip_timeout_s = 50.0;
  cfg.num_shards = 4;
  cfg.ingest_workers = 4;
  cfg.micro_batch = 8;
  cfg.async_alerts = true;
  CollectingSink sink;
  FleetMonitor monitor(model_, cfg, &sink);

  // Deterministic prelude before any eviction pressure exists: guarantees
  // the teleport counter is exercised even if the evictor later wins every
  // race against the producers.
  {
    const auto* t = picks[0];
    ASSERT_TRUE(monitor.StartTrip(999999, t->sd(), t->start_time).ok());
    ASSERT_TRUE(monitor.Submit({999999, t->edges[0], t->start_time}).ok());
    const traj::EdgeId far = UnreachableFrom(*net_, t->edges[0], 2);
    ASSERT_NE(far, roadnet::kInvalidEdge);
    ASSERT_TRUE(monitor.Submit({999999, far, t->start_time + 2.0}).ok());
    ASSERT_TRUE(monitor.SubmitEndTrip(999999).ok());
    monitor.Quiesce();
    ASSERT_GT(monitor.Stats().guard_teleports, 0);
  }

  constexpr int kThreads = 4;
  constexpr int kTripsPerThread = 5;
  std::atomic<int> started{1};  // the prelude trip
  std::atomic<bool> stop_evictor{false};
  std::thread evictor([&] {
    while (!stop_evictor.load()) {
      monitor.EvictStale(1e12);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int k = 0; k < kTripsPerThread; ++k) {
        const auto* t = picks[static_cast<size_t>(th * 7 + k * 3) %
                              picks.size()];
        const int64_t vid = th * 1000 + k;
        if (!monitor.StartTrip(vid, t->sd(), t->start_time).ok()) continue;
        started.fetch_add(1);
        const traj::EdgeId far = UnreachableFrom(*net_, t->edges[0], 2);
        for (size_t i = 0; i < t->edges.size(); ++i) {
          const traj::EdgeId e = (i % 4 == 3) ? far : t->edges[i];
          ASSERT_TRUE(monitor
                          .Submit({vid, e,
                                   t->start_time +
                                       2.0 * static_cast<double>(i)})
                          .ok());
        }
        ASSERT_TRUE(monitor.SubmitEndTrip(vid).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  stop_evictor.store(true);
  evictor.join();
  monitor.Quiesce();
  monitor.EvictStale(1e12);  // clear any trip whose end marker lost a race
  monitor.Quiesce();

  EXPECT_EQ(monitor.ActiveTrips(), 0u);
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.trips_started, started.load());
  EXPECT_EQ(stats.trips_started, stats.trips_finished + stats.trips_evicted);
  EXPECT_EQ(stats.points_shed, 0);
  // Under kBlock nothing is shed, so every submitted point was either fed,
  // guard-dropped, or skipped because the evictor removed its trip first —
  // the first three buckets can never exceed what was submitted.
  EXPECT_GE(stats.points_submitted,
            stats.points_processed + stats.points_rejected +
                stats.points_quarantine_dropped);
  EXPECT_EQ(stats.alerts_delivered, stats.alerts_emitted);
  EXPECT_GT(stats.guard_teleports, 0);
  // Quarantine evictions are a subset of all evictions, and every sink
  // notification corresponds to a counted episode.
  EXPECT_LE(stats.quarantine_evictions, stats.trips_evicted);
  EXPECT_EQ(static_cast<int64_t>(sink.NumQuarantined()),
            stats.trips_quarantined);
  EXPECT_EQ(static_cast<int64_t>(sink.NumEvicted()), stats.trips_evicted);
  EXPECT_EQ(static_cast<int64_t>(sink.NumFinished()), stats.trips_finished);
}

}  // namespace
}  // namespace rl4oasd::serve
