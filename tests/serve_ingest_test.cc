// Tests for the asynchronous ingest pipeline (serve/ingest_queue.h) and the
// async alert-delivery queue (serve/delivery_queue.h).
//
// The headline contract: Submit-driven ingest is an *optimization*, not a
// semantic change. After Quiesce(), a Submit-fed monitor must have produced
// the identical per-vehicle alert / trip-end / finalization sequences as the
// synchronous Feed reference path — across shard counts, greedy and
// stochastic detection, and with alert delivery moved onto the async queue.
// Backpressure is exact: kShed counts every dropped point, kBlock never
// drops one. The CI ThreadSanitizer job runs this suite.
#include <atomic>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/fleet.h"
#include "test_util.h"
#include "traj/types.h"

namespace rl4oasd::serve {
namespace {

core::Rl4OasdConfig TinyConfig() {
  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  cfg.rsr.embed_dim = 16;
  cfg.rsr.nrf_dim = 8;
  cfg.rsr.hidden_dim = 16;
  cfg.asd.label_dim = 8;
  cfg.embedding.dim = 16;
  cfg.embedding.epochs = 1;
  cfg.pretrain_samples = 60;
  cfg.pretrain_epochs = 2;
  cfg.joint_samples = 120;
  cfg.epochs_per_traj = 1;
  return cfg;
}

/// Records the full per-vehicle callback sequence as readable strings, so
/// async-vs-sync equivalence is one map comparison with a useful gtest diff.
class SequenceSink : public AlertSink {
 public:
  void OnAlert(const Alert& alert) override {
    Record(alert.vehicle_id, "alert[" + std::to_string(alert.range.begin) +
                                 "," + std::to_string(alert.range.end) + ")");
  }
  void OnTripEnd(int64_t vehicle_id,
                 const std::vector<uint8_t>& final_labels) override {
    Record(vehicle_id, "end:" + LabelString(final_labels));
  }
  void OnTripEvicted(int64_t vehicle_id, double /*trip_start_time*/,
                     const std::vector<uint8_t>& labels_so_far) override {
    Record(vehicle_id, "evicted:" + LabelString(labels_so_far));
  }
  void OnTripFinalized(int64_t vehicle_id, traj::SdPair /*sd*/,
                       double /*start_time*/,
                       const std::vector<traj::EdgeId>& edges,
                       const std::vector<uint8_t>& final_labels) override {
    Record(vehicle_id, "finalized:" + std::to_string(edges.size()) + ":" +
                           LabelString(final_labels));
  }

  std::map<int64_t, std::vector<std::string>> Take() {
    common::MutexLock lock(&mu_);
    return std::move(events_);
  }

 private:
  static std::string LabelString(const std::vector<uint8_t>& labels) {
    std::string s;
    s.reserve(labels.size());
    for (uint8_t l : labels) s.push_back(l ? '1' : '0');
    return s;
  }
  void Record(int64_t vehicle_id, std::string event) {
    common::MutexLock lock(&mu_);
    events_[vehicle_id].push_back(std::move(event));
  }

  mutable common::Mutex mu_;
  std::map<int64_t, std::vector<std::string>> events_ RL4OASD_GUARDED_BY(mu_);
};

/// A sink whose OnTripEnd parks until the test opens the gate — pins the
/// lane worker inside a trip-end delivery so backpressure tests can fill a
/// staging lane deterministically.
class GateSink : public AlertSink {
 public:
  void OnAlert(const Alert&) override {}
  void OnTripEnd(int64_t, const std::vector<uint8_t>&) override {
    common::MutexLock lock(&mu_);
    entered_ = true;
    entered_cv_.NotifyAll();
    while (!open_) gate_cv_.Wait(&mu_);
  }

  /// Blocks until a worker is parked inside OnTripEnd.
  void AwaitEntered() {
    common::MutexLock lock(&mu_);
    while (!entered_) entered_cv_.Wait(&mu_);
  }
  void Open() {
    common::MutexLock lock(&mu_);
    open_ = true;
    gate_cv_.NotifyAll();
  }

 private:
  mutable common::Mutex mu_;
  common::CondVar entered_cv_;
  common::CondVar gate_cv_;
  bool entered_ RL4OASD_GUARDED_BY(mu_) = false;
  bool open_ RL4OASD_GUARDED_BY(mu_) = false;
};

class FleetIngestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new roadnet::RoadNetwork(testing::SmallGrid());
    dataset_ = new traj::Dataset(testing::SmallDataset(*net_, 6, 0.12));
    model_ = new core::Rl4Oasd(net_, TinyConfig());
    model_->Fit(*dataset_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    delete net_;
    model_ = nullptr;
    dataset_ = nullptr;
    net_ = nullptr;
  }

  /// A cheap untrained model over the same network (ingest semantics do not
  /// depend on training); `stochastic` turns on sampled detection.
  static std::shared_ptr<core::Rl4Oasd> FreshModel(uint64_t seed,
                                                   bool stochastic) {
    core::Rl4OasdConfig cfg = TinyConfig();
    cfg.seed = seed;
    cfg.rsr.seed = seed + 1;
    cfg.asd.seed = seed + 2;
    cfg.detector.seed = seed + 3;
    cfg.detector.stochastic = stochastic;
    return std::make_shared<core::Rl4Oasd>(net_, cfg);
  }

  static std::vector<const traj::MapMatchedTrajectory*> PickTrips(
      size_t count) {
    std::vector<const traj::MapMatchedTrajectory*> picks;
    for (const auto& lt : dataset_->trajs()) {
      if (lt.traj.edges.size() >= 2) picks.push_back(&lt.traj);
      if (picks.size() == count) break;
    }
    return picks;
  }

  /// Round-robin interleaving: one point per trip per round (vid = index
  /// into `picks`), the fleet-shaped stream the monitor serves in practice.
  static std::vector<FleetPoint> InterleavedStream(
      const std::vector<const traj::MapMatchedTrajectory*>& picks) {
    std::vector<FleetPoint> points;
    size_t longest = 0;
    for (const auto* t : picks) longest = std::max(longest, t->edges.size());
    for (size_t i = 0; i < longest; ++i) {
      for (size_t v = 0; v < picks.size(); ++v) {
        if (i < picks[v]->edges.size()) {
          points.push_back({static_cast<int64_t>(v), picks[v]->edges[i],
                            picks[v]->start_time +
                                2.0 * static_cast<double>(i)});
        }
      }
    }
    return points;
  }

  /// The synchronous reference: per-point Feed + EndTrip, sink callbacks
  /// inline. Returns the per-vehicle event sequences.
  static std::map<int64_t, std::vector<std::string>> RunSyncReference(
      const std::shared_ptr<const core::Rl4Oasd>& model,
      const std::vector<const traj::MapMatchedTrajectory*>& picks,
      std::span<const FleetPoint> points) {
    SequenceSink sink;
    FleetMonitor monitor(model, {}, &sink);
    StartAll(&monitor, picks);
    for (const FleetPoint& p : points) {
      EXPECT_TRUE(monitor.Feed(p.vehicle_id, p.edge, p.timestamp).ok());
    }
    for (size_t v = 0; v < picks.size(); ++v) {
      EXPECT_TRUE(monitor.EndTrip(static_cast<int64_t>(v)).ok());
    }
    return sink.Take();
  }

  static void StartAll(
      FleetMonitor* monitor,
      const std::vector<const traj::MapMatchedTrajectory*>& picks) {
    for (size_t v = 0; v < picks.size(); ++v) {
      ASSERT_TRUE(monitor
                      ->StartTrip(static_cast<int64_t>(v), picks[v]->sd(),
                                  picks[v]->start_time)
                      .ok());
    }
  }

  static roadnet::RoadNetwork* net_;
  static traj::Dataset* dataset_;
  static core::Rl4Oasd* model_;
};

roadnet::RoadNetwork* FleetIngestTest::net_ = nullptr;
traj::Dataset* FleetIngestTest::dataset_ = nullptr;
core::Rl4Oasd* FleetIngestTest::model_ = nullptr;

TEST_F(FleetIngestTest, SubmitMatchesFeedReferenceAcrossShards) {
  // The tentpole equivalence: Submit-driven self-batching ingest plus async
  // alert delivery must reproduce the synchronous reference exactly, for
  // every vehicle, across shard counts (1 lane, several lanes, one lane per
  // vehicle-ish). Quiesce() is the comparison point.
  const auto picks = PickTrips(12);
  ASSERT_GE(picks.size(), 8u);
  const auto points = InterleavedStream(picks);
  std::shared_ptr<const core::Rl4Oasd> model(model_, [](const void*) {});
  const auto expected = RunSyncReference(model, picks, points);

  for (const size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    SequenceSink sink;
    FleetConfig cfg;
    cfg.num_shards = shards;
    cfg.ingest_workers = shards;  // clamped to num_shards internally
    cfg.micro_batch = 8;
    cfg.async_alerts = true;
    FleetMonitor monitor(model, cfg, &sink);
    StartAll(&monitor, picks);
    for (const FleetPoint& p : points) {
      ASSERT_TRUE(monitor.Submit(p).ok());
    }
    for (size_t v = 0; v < picks.size(); ++v) {
      ASSERT_TRUE(monitor.SubmitEndTrip(static_cast<int64_t>(v)).ok());
    }
    monitor.Quiesce();

    EXPECT_EQ(sink.Take(), expected) << "shards " << shards;
    const FleetStats stats = monitor.Stats();
    EXPECT_EQ(stats.points_submitted, static_cast<int64_t>(points.size()));
    EXPECT_EQ(stats.points_processed, static_cast<int64_t>(points.size()));
    EXPECT_EQ(stats.points_shed, 0);
    EXPECT_EQ(stats.trips_finished, static_cast<int64_t>(picks.size()));
    EXPECT_EQ(stats.alerts_delivered, stats.alerts_emitted);
    EXPECT_EQ(monitor.ActiveTrips(), 0u);
  }
}

TEST_F(FleetIngestTest, SubmitBatchAndFlushAgeMatchReference) {
  // SubmitBatch staging plus a nonzero points-denominated flush age (waves
  // held back until the oldest staged point has seen N later submissions)
  // must not change per-vehicle results either.
  const auto picks = PickTrips(10);
  ASSERT_GE(picks.size(), 8u);
  const auto points = InterleavedStream(picks);
  std::shared_ptr<const core::Rl4Oasd> model(model_, [](const void*) {});
  const auto expected = RunSyncReference(model, picks, points);

  SequenceSink sink;
  FleetConfig cfg;
  cfg.num_shards = 4;
  cfg.ingest_workers = 2;  // two lanes, each serving two shards
  cfg.micro_batch = 16;
  cfg.ingest_flush_age_points = 32;
  cfg.async_alerts = true;
  FleetMonitor monitor(model, cfg, &sink);
  StartAll(&monitor, picks);
  // Ragged chunks exercise the batch splitter.
  size_t offset = 0;
  size_t accepted = 0;
  for (size_t chunk = 13; offset < points.size(); chunk = chunk * 2 + 3) {
    const size_t n = std::min(chunk, points.size() - offset);
    accepted += monitor.SubmitBatch(
        std::span<const FleetPoint>(points.data() + offset, n));
    offset += n;
  }
  EXPECT_EQ(accepted, points.size());  // kBlock: nothing shed
  for (size_t v = 0; v < picks.size(); ++v) {
    ASSERT_TRUE(monitor.SubmitEndTrip(static_cast<int64_t>(v)).ok());
  }
  monitor.Quiesce();
  EXPECT_EQ(sink.Take(), expected);
  EXPECT_EQ(monitor.Stats().points_processed,
            static_cast<int64_t>(points.size()));
}

TEST_F(FleetIngestTest, StochasticDetectionEquivalence) {
  // Sampled (stochastic) detection is the hard case for batching: each
  // trip's RNG must advance exactly as in the scalar path regardless of how
  // the waves fuse. The per-vehicle streams must still match point-for-point.
  const auto picks = PickTrips(8);
  ASSERT_GE(picks.size(), 6u);
  const auto points = InterleavedStream(picks);
  const auto model = FreshModel(77, /*stochastic=*/true);
  const auto expected = RunSyncReference(model, picks, points);

  for (const size_t shards : {size_t{1}, size_t{4}}) {
    SequenceSink sink;
    FleetConfig cfg;
    cfg.num_shards = shards;
    cfg.ingest_workers = shards;
    cfg.micro_batch = 4;
    cfg.async_alerts = true;
    FleetMonitor monitor(model, cfg, &sink);
    StartAll(&monitor, picks);
    for (const FleetPoint& p : points) {
      ASSERT_TRUE(monitor.Submit(p).ok());
    }
    for (size_t v = 0; v < picks.size(); ++v) {
      ASSERT_TRUE(monitor.SubmitEndTrip(static_cast<int64_t>(v)).ok());
    }
    monitor.Quiesce();
    EXPECT_EQ(sink.Take(), expected) << "shards " << shards;
  }
}

TEST_F(FleetIngestTest, AsyncAlertsAloneMatchSyncDelivery) {
  // async_alerts without ingest workers: the same Feed-driven run, with
  // every sink callback making a round trip through the delivery queue. The
  // per-vehicle sequences (ordering included) must be unchanged, and the
  // delivered counter must catch up to the emitted counter at Quiesce.
  const auto picks = PickTrips(8);
  ASSERT_GE(picks.size(), 6u);
  const auto points = InterleavedStream(picks);
  std::shared_ptr<const core::Rl4Oasd> model(model_, [](const void*) {});
  const auto expected = RunSyncReference(model, picks, points);

  SequenceSink sink;
  FleetConfig cfg;
  cfg.async_alerts = true;
  cfg.alert_queue_capacity = 8;  // small: exercises enqueue backpressure
  FleetMonitor monitor(model, cfg, &sink);
  StartAll(&monitor, picks);
  for (const FleetPoint& p : points) {
    ASSERT_TRUE(monitor.Feed(p.vehicle_id, p.edge, p.timestamp).ok());
  }
  for (size_t v = 0; v < picks.size(); ++v) {
    ASSERT_TRUE(monitor.EndTrip(static_cast<int64_t>(v)).ok());
  }
  monitor.Quiesce();
  EXPECT_EQ(sink.Take(), expected);
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.alerts_delivered, stats.alerts_emitted);
}

TEST_F(FleetIngestTest, DestructorDrainsWithoutQuiesce) {
  // Dropping the monitor with staged points and a queued delivery backlog
  // must lose nothing: the ingest workers drain their lanes before joining,
  // then the delivery drainer flushes. The sink ends up with the full
  // reference sequences even though Quiesce was never called.
  const auto picks = PickTrips(8);
  ASSERT_GE(picks.size(), 6u);
  const auto points = InterleavedStream(picks);
  std::shared_ptr<const core::Rl4Oasd> model(model_, [](const void*) {});
  const auto expected = RunSyncReference(model, picks, points);

  SequenceSink sink;
  {
    FleetConfig cfg;
    cfg.num_shards = 4;
    cfg.ingest_workers = 4;
    cfg.async_alerts = true;
    FleetMonitor monitor(model, cfg, &sink);
    StartAll(&monitor, picks);
    for (const FleetPoint& p : points) {
      ASSERT_TRUE(monitor.Submit(p).ok());
    }
    for (size_t v = 0; v < picks.size(); ++v) {
      ASSERT_TRUE(monitor.SubmitEndTrip(static_cast<int64_t>(v)).ok());
    }
    // No Quiesce: the destructor owns the drain.
  }
  EXPECT_EQ(sink.Take(), expected);
}

TEST_F(FleetIngestTest, ShedPolicyCountsEveryDrop) {
  // Park the lone lane worker inside a gated OnTripEnd, so the lane cannot
  // drain; then the shed accounting is exact: the first `capacity` submits
  // are accepted, every one after that returns ResourceExhausted, and the
  // counter equals the rejection count to the point.
  constexpr size_t kCapacity = 4;
  constexpr size_t kOverflow = 7;
  GateSink gate;
  FleetConfig cfg;
  cfg.ingest_workers = 1;
  cfg.ingest_queue_capacity = kCapacity;
  cfg.overload_policy = OverloadPolicy::kShed;
  FleetMonitor monitor(model_, cfg, &gate);
  const auto& a = (*dataset_)[0].traj;
  const auto& b = (*dataset_)[1].traj;
  ASSERT_TRUE(monitor.StartTrip(1, a.sd(), a.start_time).ok());
  ASSERT_TRUE(monitor.StartTrip(2, b.sd(), b.start_time).ok());

  // Trip 1 runs to completion; its OnTripEnd parks the worker.
  ASSERT_TRUE(monitor.Submit({1, a.edges[0], a.start_time}).ok());
  ASSERT_TRUE(monitor.SubmitEndTrip(1).ok());
  gate.AwaitEntered();

  // The worker is parked and its lane is empty: exactly kCapacity more
  // points fit, the rest shed.
  size_t accepted = 0;
  size_t shed = 0;
  for (size_t i = 0; i < kCapacity + kOverflow; ++i) {
    const Status st =
        monitor.Submit({2, b.edges[i % b.edges.size()],
                        b.start_time + 2.0 * static_cast<double>(i)});
    if (st.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_EQ(accepted, kCapacity);
  EXPECT_EQ(shed, kOverflow);

  gate.Open();
  monitor.Quiesce();
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.points_shed, static_cast<int64_t>(kOverflow));
  EXPECT_EQ(stats.points_submitted, static_cast<int64_t>(1 + kCapacity));
  EXPECT_EQ(stats.points_processed, stats.points_submitted);
  EXPECT_TRUE(monitor.SubmitEndTrip(2).ok());  // end markers are never shed
  monitor.Quiesce();
  EXPECT_EQ(monitor.Stats().trips_finished, 2);
}

TEST_F(FleetIngestTest, BlockPolicyNeverDrops) {
  // kBlock with a two-slot lane and several producer threads: submits stall
  // instead of shedding, and after Quiesce every offered point was both
  // accepted and processed. Runs under the CI ThreadSanitizer job.
  constexpr int kProducers = 4;
  constexpr int kPointsPerProducer = 50;
  SequenceSink sink;
  FleetConfig cfg;
  cfg.ingest_workers = 2;
  cfg.num_shards = 4;
  cfg.ingest_queue_capacity = 2;
  cfg.overload_policy = OverloadPolicy::kBlock;
  cfg.async_alerts = true;
  cfg.alert_queue_capacity = 4;
  FleetMonitor monitor(model_, cfg, &sink);
  const auto& t = (*dataset_)[0].traj;
  for (int v = 0; v < kProducers; ++v) {
    ASSERT_TRUE(monitor.StartTrip(v, t.sd(), t.start_time).ok());
  }
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int v = 0; v < kProducers; ++v) {
    producers.emplace_back([&, v] {
      for (int i = 0; i < kPointsPerProducer; ++i) {
        ASSERT_TRUE(
            monitor
                .Submit({v, t.edges[static_cast<size_t>(i) % t.edges.size()],
                         t.start_time + 2.0 * static_cast<double>(i)})
                .ok());
      }
      ASSERT_TRUE(monitor.SubmitEndTrip(v).ok());
    });
  }
  for (auto& th : producers) th.join();
  monitor.Quiesce();

  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.points_shed, 0);
  EXPECT_EQ(stats.points_submitted,
            static_cast<int64_t>(kProducers) * kPointsPerProducer);
  EXPECT_EQ(stats.points_processed, stats.points_submitted);
  EXPECT_EQ(stats.trips_finished, kProducers);
  EXPECT_EQ(stats.alerts_delivered, stats.alerts_emitted);
  EXPECT_EQ(monitor.ActiveTrips(), 0u);
}

TEST_F(FleetIngestTest, ConcurrentSubmitWithEvictionConserves) {
  // Submit-driven ingest with an aggressive evictor yanking trips between
  // waves (the async counterpart of the synchronous conservation stress).
  // Identities checked after Quiesce: trip conservation, exactly-once sink
  // delivery, delivered == emitted. Runs under the CI TSAN job.
  SequenceSink sink;
  FleetConfig cfg;
  cfg.trip_timeout_s = 50.0;
  cfg.num_shards = 4;
  cfg.ingest_workers = 4;
  cfg.micro_batch = 8;
  cfg.async_alerts = true;
  FleetMonitor monitor(model_, cfg, &sink);

  constexpr int kThreads = 4;
  constexpr int kTripsPerThread = 6;
  std::atomic<int> started{0};
  std::atomic<bool> stop_evictor{false};
  std::thread evictor([&] {
    while (!stop_evictor.load()) {
      monitor.EvictStale(1e12);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int k = 0; k < kTripsPerThread; ++k) {
        const auto& lt =
            (*dataset_)[(static_cast<size_t>(th) * 11 +
                         static_cast<size_t>(k) * 3) %
                        dataset_->size()];
        const auto& t = lt.traj;
        if (t.edges.size() < 2) continue;
        const int64_t vid = th * 1000 + k;
        if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) continue;
        started.fetch_add(1);
        for (traj::EdgeId e : t.edges) {
          ASSERT_TRUE(monitor.Submit({vid, e, t.start_time}).ok());
        }
        ASSERT_TRUE(monitor.SubmitEndTrip(vid).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  stop_evictor.store(true);
  evictor.join();
  monitor.Quiesce();
  monitor.EvictStale(1e12);  // clear any trip whose end marker lost a race
  monitor.Quiesce();

  EXPECT_EQ(monitor.ActiveTrips(), 0u);
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.trips_started, started.load());
  EXPECT_EQ(stats.trips_started, stats.trips_finished + stats.trips_evicted);
  EXPECT_EQ(stats.alerts_delivered, stats.alerts_emitted);
  EXPECT_EQ(stats.points_shed, 0);
  // Every lifecycle event reached the sink exactly once.
  const auto events = sink.Take();
  int64_t ends = 0;
  int64_t evictions = 0;
  for (const auto& [vid, seq] : events) {
    for (const std::string& e : seq) {
      if (e.rfind("end:", 0) == 0) ++ends;
      if (e.rfind("evicted:", 0) == 0) ++evictions;
    }
  }
  EXPECT_EQ(ends, stats.trips_finished);
  EXPECT_EQ(evictions, stats.trips_evicted);
}

TEST_F(FleetIngestTest, DisabledPipelineIsExplicit) {
  // With ingest_workers == 0, Submit* fail loudly instead of silently
  // dropping work, and Quiesce is a no-op (both subsystems off).
  FleetMonitor monitor(model_, {}, nullptr);
  const auto& t = (*dataset_)[0].traj;
  ASSERT_TRUE(monitor.StartTrip(1, t.sd(), t.start_time).ok());
  EXPECT_EQ(monitor.Submit({1, t.edges[0], t.start_time}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(monitor.SubmitEndTrip(1).code(), StatusCode::kFailedPrecondition);
  const FleetPoint p{1, t.edges[0], t.start_time};
  EXPECT_EQ(monitor.SubmitBatch(std::span<const FleetPoint>(&p, 1)), 0u);
  monitor.Quiesce();  // no-op, must not hang
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.points_submitted, 0);
  EXPECT_EQ(stats.points_shed, 0);
  // Without async delivery, delivered mirrors emitted.
  EXPECT_EQ(stats.alerts_delivered, stats.alerts_emitted);
  EXPECT_TRUE(monitor.EndTrip(1).ok());
}

TEST_F(FleetIngestTest, SubmitEndTripBeforeAnyPointFinishesEmpty) {
  // An end marker with nothing staged ahead of it is a legal degenerate
  // trip: the lane worker calls EndTrip on a zero-point session.
  const auto& t = (*dataset_)[0].traj;
  SequenceSink sink;
  FleetConfig cfg;
  cfg.ingest_workers = 1;
  FleetMonitor monitor(model_, cfg, &sink);
  ASSERT_TRUE(monitor.StartTrip(1, t.sd(), t.start_time).ok());
  ASSERT_TRUE(monitor.SubmitEndTrip(1).ok());
  monitor.Quiesce();
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.trips_finished, 1);
  EXPECT_EQ(stats.points_processed, 0);
  const auto events = sink.Take();
  ASSERT_EQ(events.count(1), 1u);
  // Zero points -> empty final labels on both end callbacks.
  EXPECT_EQ(events.at(1)[0], "end:");
}

TEST_F(FleetIngestTest, DoubleEndTripIsNotFound) {
  const auto& t = (*dataset_)[0].traj;
  FleetMonitor monitor(model_, {}, nullptr);
  ASSERT_TRUE(monitor.StartTrip(1, t.sd(), t.start_time).ok());
  ASSERT_TRUE(monitor.Feed(1, t.edges[0], t.start_time).ok());
  ASSERT_TRUE(monitor.EndTrip(1).ok());
  EXPECT_EQ(monitor.EndTrip(1).status().code(), StatusCode::kNotFound);
  // The double call neither double-counts nor resurrects the trip.
  EXPECT_EQ(monitor.Stats().trips_finished, 1);
  EXPECT_EQ(monitor.ActiveTrips(), 0u);
}

TEST_F(FleetIngestTest, FeedAfterFinishIsNotFound) {
  const auto& t = (*dataset_)[0].traj;
  FleetMonitor monitor(model_, {}, nullptr);
  ASSERT_TRUE(monitor.StartTrip(1, t.sd(), t.start_time).ok());
  ASSERT_TRUE(monitor.Feed(1, t.edges[0], t.start_time).ok());
  ASSERT_TRUE(monitor.EndTrip(1).ok());
  EXPECT_EQ(monitor.Feed(1, t.edges[1], t.start_time + 2.0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(monitor.Stats().points_processed, 1);
}

TEST_F(FleetIngestTest, EmptyFeedBatchIsANoOp) {
  FleetMonitor monitor(model_, {}, nullptr);
  EXPECT_EQ(monitor.FeedBatch({}), 0u);
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.points_processed, 0);
  EXPECT_EQ(stats.trips_started, 0);
}

TEST_F(FleetIngestTest, ZeroToleranceGuardStillFinishesTheTrip) {
  // A maximally strict guard (every class kReject, any gap over 1s is a
  // dropout) starves the detector but never wedges the trip lifecycle:
  // rejection is per-point, EndTrip still works.
  const auto& t = (*dataset_)[0].traj;
  ASSERT_GE(t.edges.size(), 3u);
  FleetConfig cfg;
  cfg.guard.duplicate_policy = GuardPolicy::kReject;
  cfg.guard.out_of_order_policy = GuardPolicy::kReject;
  cfg.guard.skew_policy = GuardPolicy::kReject;
  cfg.guard.dropout_policy = GuardPolicy::kReject;
  cfg.guard.teleport_policy = GuardPolicy::kReject;
  cfg.guard.dropout_gap_s = 1.0;
  FleetMonitor monitor(model_, cfg, nullptr);
  ASSERT_TRUE(monitor.StartTrip(1, t.sd(), t.start_time).ok());
  // First point lands on the monotone clock (gap 0): clean.
  ASSERT_TRUE(monitor.Feed(1, t.edges[0], t.start_time).ok());
  // Rejected points do not advance the clock, so every later point at the
  // nominal 2s cadence stays a >1s dropout forever.
  EXPECT_EQ(
      monitor.Feed(1, t.edges[1], t.start_time + 2.0).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      monitor.Feed(1, t.edges[2], t.start_time + 4.0).status().code(),
      StatusCode::kInvalidArgument);
  const auto labels = monitor.EndTrip(1);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->size(), 1u);  // only the clean point reached the session
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.points_processed, 1);
  EXPECT_EQ(stats.points_rejected, 2);
  EXPECT_EQ(stats.guard_dropout_gaps, 2);
  EXPECT_EQ(stats.trips_finished, 1);
}

}  // namespace
}  // namespace rl4oasd::serve
