// Tests for durable fleet snapshots and zero-downtime model hot-swap.
//
// The headline contract (see serve::FleetMonitor::Snapshot): snapshot a
// fleet at any feed boundary, restore into a fresh monitor over the same
// model bundle, and the remaining per-vehicle alert / trip-end / eviction
// stream is bit-identical to the uninterrupted run — across scalar and
// micro-batched ingest, shard counts, greedy and stochastic detection.
// SwapModel must migrate in-flight trips deterministically (re-primed
// hidden states, carried-over run/RNG bookkeeping) with no alert lost or
// duplicated, retire the old model via shared_ptr handoff, and stay clean
// under ThreadSanitizer against concurrent FeedBatch and eviction (the CI
// TSAN job runs this suite).
#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary.h"
#include "common/mutex.h"
#include "io/fleet_snapshot.h"
#include "io/model_io.h"
#include "serve/fleet.h"
#include "test_util.h"
#include "traj/types.h"

namespace rl4oasd::serve {
namespace {

core::Rl4OasdConfig TinyConfig() {
  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = 0.1;
  cfg.preprocess.delta = 0.12;
  cfg.detector.delay_d = 2;
  cfg.rsr.embed_dim = 16;
  cfg.rsr.nrf_dim = 8;
  cfg.rsr.hidden_dim = 16;
  cfg.asd.label_dim = 8;
  cfg.embedding.dim = 16;
  cfg.embedding.epochs = 1;
  cfg.pretrain_samples = 60;
  cfg.pretrain_epochs = 2;
  cfg.joint_samples = 120;
  cfg.epochs_per_traj = 1;
  return cfg;
}

/// One small trained model shared by the suite (training takes a couple of
/// seconds; the tests only need a consistent detector).
class FleetSnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new roadnet::RoadNetwork(testing::SmallGrid());
    dataset_ = new traj::Dataset(testing::SmallDataset(*net_, 6, 0.12));
    model_ = new core::Rl4Oasd(net_, TinyConfig());
    model_->Fit(*dataset_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    delete net_;
    model_ = nullptr;
    dataset_ = nullptr;
    net_ = nullptr;
  }

  /// A cheap *untrained* model over the same network: different weights,
  /// same architecture. Snapshot/swap semantics do not depend on training.
  static std::shared_ptr<core::Rl4Oasd> FreshModel(uint64_t seed,
                                                  bool stochastic = false) {
    core::Rl4OasdConfig cfg = TinyConfig();
    cfg.seed = seed;
    cfg.rsr.seed = seed + 1;
    cfg.asd.seed = seed + 2;
    cfg.detector.seed = seed + 3;
    cfg.detector.stochastic = stochastic;
    return std::make_shared<core::Rl4Oasd>(net_, cfg);
  }

  static std::vector<const traj::MapMatchedTrajectory*> PickTrips(
      size_t count) {
    std::vector<const traj::MapMatchedTrajectory*> picks;
    for (const auto& lt : dataset_->trajs()) {
      if (lt.traj.edges.size() >= 2) picks.push_back(&lt.traj);
      if (picks.size() == count) break;
    }
    return picks;
  }

  /// Round-robin interleaving: one point per trip per round (vid = index
  /// into `picks`), the fleet-shaped stream the monitor serves in practice.
  static std::vector<FleetPoint> InterleavedStream(
      const std::vector<const traj::MapMatchedTrajectory*>& picks) {
    std::vector<FleetPoint> points;
    size_t longest = 0;
    for (const auto* t : picks) longest = std::max(longest, t->edges.size());
    for (size_t i = 0; i < longest; ++i) {
      for (size_t v = 0; v < picks.size(); ++v) {
        if (i < picks[v]->edges.size()) {
          points.push_back({static_cast<int64_t>(v), picks[v]->edges[i],
                            picks[v]->start_time +
                                2.0 * static_cast<double>(i)});
        }
      }
    }
    return points;
  }

  static roadnet::RoadNetwork* net_;
  static traj::Dataset* dataset_;
  static core::Rl4Oasd* model_;
};

roadnet::RoadNetwork* FleetSnapshotTest::net_ = nullptr;
traj::Dataset* FleetSnapshotTest::dataset_ = nullptr;
core::Rl4Oasd* FleetSnapshotTest::model_ = nullptr;

// ---------------------------------------------------------------------------
// Per-vehicle event log: the full externally visible callback stream.

struct TripEvents {
  std::vector<std::pair<traj::Subtrajectory, size_t>> alerts;  // (range, pos)
  std::vector<std::vector<uint8_t>> ends;
  std::vector<std::vector<uint8_t>> evictions;

  bool operator==(const TripEvents&) const = default;
};

class EventSink : public AlertSink {
 public:
  void OnAlert(const Alert& alert) override {
    common::MutexLock lock(&mu_);
    events_[alert.vehicle_id].alerts.emplace_back(alert.range,
                                                  alert.position);
  }
  void OnTripEnd(int64_t vehicle_id,
                 const std::vector<uint8_t>& final_labels) override {
    common::MutexLock lock(&mu_);
    events_[vehicle_id].ends.push_back(final_labels);
  }
  void OnTripEvicted(int64_t vehicle_id, double /*trip_start_time*/,
                     const std::vector<uint8_t>& labels_so_far) override {
    common::MutexLock lock(&mu_);
    events_[vehicle_id].evictions.push_back(labels_so_far);
  }

  std::map<int64_t, TripEvents> Take() {
    common::MutexLock lock(&mu_);
    return std::move(events_);
  }

 private:
  common::Mutex mu_;
  std::map<int64_t, TripEvents> events_;
};

/// Appends `tail`'s per-vehicle events after `head`'s (the resumed process
/// continues the crashed process's stream).
std::map<int64_t, TripEvents> Concat(std::map<int64_t, TripEvents> head,
                                     std::map<int64_t, TripEvents> tail) {
  for (auto& [vid, ev] : tail) {
    TripEvents& dst = head[vid];
    dst.alerts.insert(dst.alerts.end(), ev.alerts.begin(), ev.alerts.end());
    dst.ends.insert(dst.ends.end(), ev.ends.begin(), ev.ends.end());
    dst.evictions.insert(dst.evictions.end(), ev.evictions.begin(),
                         ev.evictions.end());
  }
  return head;
}

enum class Ingest { kScalar, kBatch };

struct FleetSetup {
  Ingest ingest = Ingest::kScalar;
  size_t micro_batch = 128;
  size_t num_shards = 16;
  size_t chunk = 37;  // FeedBatch call granularity
};

void FeedRange(FleetMonitor* monitor, std::span<const FleetPoint> points,
               size_t lo, size_t hi, const FleetSetup& setup) {
  if (setup.ingest == Ingest::kScalar) {
    for (size_t i = lo; i < hi; ++i) {
      (void)monitor->Feed(points[i].vehicle_id, points[i].edge,
                          points[i].timestamp);
    }
    return;
  }
  for (size_t i = lo; i < hi; i += setup.chunk) {
    const size_t n = std::min(setup.chunk, hi - i);
    (void)monitor->FeedBatch(points.subspan(i, n));
  }
}

/// Ends the even vehicles, evicts the rest: the full callback zoo.
void FinishFleet(FleetMonitor* monitor, size_t num_vehicles) {
  for (size_t v = 0; v < num_vehicles; v += 2) {
    (void)monitor->EndTrip(static_cast<int64_t>(v));
  }
  (void)monitor->EvictStale(1e15);
}

// ---------------------------------------------------------------------------
// The headline property: restore-equivalence.

void ExpectStatsEqual(const FleetStats& a, const FleetStats& b) {
  EXPECT_EQ(a.trips_started, b.trips_started);
  EXPECT_EQ(a.trips_finished, b.trips_finished);
  EXPECT_EQ(a.points_processed, b.points_processed);
  EXPECT_EQ(a.alerts_emitted, b.alerts_emitted);
  EXPECT_EQ(a.trips_evicted, b.trips_evicted);
}

void RunRestoreEquivalence(const core::Rl4Oasd* model,
                           const std::vector<const traj::MapMatchedTrajectory*>&
                               picks,
                           const std::vector<FleetPoint>& points,
                           const FleetSetup& setup, size_t snapshot_at) {
  FleetConfig cfg;
  cfg.micro_batch = setup.micro_batch;
  cfg.num_shards = setup.num_shards;

  auto start_all = [&](FleetMonitor* monitor) {
    for (size_t v = 0; v < picks.size(); ++v) {
      ASSERT_TRUE(monitor
                      ->StartTrip(static_cast<int64_t>(v), picks[v]->sd(),
                                  picks[v]->start_time)
                      .ok());
    }
  };

  // Reference: the uninterrupted run.
  EventSink ref_sink;
  FleetMonitor reference(model, cfg, &ref_sink);
  start_all(&reference);
  FeedRange(&reference, points, 0, points.size(), setup);
  FinishFleet(&reference, picks.size());
  const auto ref_events = ref_sink.Take();
  const FleetStats ref_stats = reference.Stats();

  // Crashed process: feed the prefix, snapshot, stop.
  EventSink crash_sink;
  FleetMonitor crashed(model, cfg, &crash_sink);
  start_all(&crashed);
  FeedRange(&crashed, points, 0, snapshot_at, setup);
  BinaryWriter w;
  ASSERT_TRUE(crashed.Snapshot(&w, "property-test").ok());

  // Fresh process: restore and finish the stream.
  EventSink resumed_sink;
  FleetMonitor resumed(model, cfg, &resumed_sink);
  BinaryReader r(w.buffer());
  FleetMonitor::RestoreInfo info;
  ASSERT_TRUE(resumed.Restore(&r, &info).ok());
  EXPECT_EQ(info.user_meta, "property-test");
  EXPECT_EQ(info.trips.size(), resumed.ActiveTrips());
  FeedRange(&resumed, points, snapshot_at, points.size(), setup);
  FinishFleet(&resumed, picks.size());

  const auto split_events = Concat(crash_sink.Take(), resumed_sink.Take());
  EXPECT_EQ(split_events, ref_events)
      << "snapshot at point " << snapshot_at << " of " << points.size();
  ExpectStatsEqual(resumed.Stats(), ref_stats);
}

TEST_F(FleetSnapshotTest, RestoreEquivalenceAcrossIngestModes) {
  const auto picks = PickTrips(12);
  ASSERT_GE(picks.size(), 8u);
  const auto points = InterleavedStream(picks);
  ASSERT_GT(points.size(), 40u);

  const FleetSetup setups[] = {
      {Ingest::kScalar, 128, 16, 37},
      {Ingest::kBatch, 1, 1, 41},
      {Ingest::kBatch, 128, 4, 173},
  };
  Rng rng(2024);
  for (const FleetSetup& setup : setups) {
    for (int trial = 0; trial < 3; ++trial) {
      // A random mid-stream cut, including awkward spots near the ends.
      const size_t k = 1 + rng.UniformInt(points.size() - 1);
      RunRestoreEquivalence(model_, picks, points, setup, k);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_F(FleetSnapshotTest, RestoreEquivalenceStochasticDetection) {
  // Stochastic detection consumes one RNG draw per policy decision; the
  // snapshot carries every session's stream position, so the resumed run
  // must sample the exact same actions. An untrained model is fine — the
  // property does not depend on detection quality.
  const auto model = FreshModel(909, /*stochastic=*/true);
  const auto picks = PickTrips(8);
  ASSERT_GE(picks.size(), 4u);
  const auto points = InterleavedStream(picks);

  Rng rng(77);
  const FleetSetup setups[] = {
      {Ingest::kScalar, 128, 16, 37},
      {Ingest::kBatch, 128, 4, 53},
  };
  for (const FleetSetup& setup : setups) {
    for (int trial = 0; trial < 2; ++trial) {
      const size_t k = 1 + rng.UniformInt(points.size() - 1);
      RunRestoreEquivalence(model.get(), picks, points, setup, k);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_F(FleetSnapshotTest, SnapshotFileRoundTripThroughDisk) {
  // The in-memory property above skips the CRC file layer; pin the full
  // write-to-disk / OpenFile path once.
  const auto picks = PickTrips(6);
  const auto points = InterleavedStream(picks);
  const size_t k = points.size() / 2;

  EventSink sink;
  FleetMonitor monitor(model_, {}, &sink);
  for (size_t v = 0; v < picks.size(); ++v) {
    ASSERT_TRUE(monitor
                    .StartTrip(static_cast<int64_t>(v), picks[v]->sd(),
                               picks[v]->start_time)
                    .ok());
  }
  FeedRange(&monitor, points, 0, k, {Ingest::kBatch, 128, 16, 64});
  BinaryWriter w;
  ASSERT_TRUE(monitor.Snapshot(&w, "disk-round-trip").ok());
  const std::string path =
      ::testing::TempDir() + "/rl4oasd_fleet_snapshot_test.snap";
  ASSERT_TRUE(w.WriteToFile(path).ok());

  // The model-free inspector agrees with the monitor.
  auto desc = io::DescribeFleetSnapshot(path);
  ASSERT_TRUE(desc.ok()) << desc.status().ToString();
  EXPECT_EQ(desc->version, io::kFleetSnapshotVersion);
  EXPECT_EQ(desc->model_fingerprint, io::ModelFingerprint(*model_));
  EXPECT_EQ(desc->user_meta, "disk-round-trip");
  EXPECT_EQ(desc->trips.size(), monitor.ActiveTrips());
  EXPECT_EQ(desc->points_processed, monitor.Stats().points_processed);

  auto reader = BinaryReader::OpenFile(path);
  ASSERT_TRUE(reader.ok());
  EventSink resumed_sink;
  FleetMonitor resumed(model_, {}, &resumed_sink);
  ASSERT_TRUE(resumed.Restore(&*reader).ok());
  EXPECT_EQ(resumed.ActiveTrips(), monitor.ActiveTrips());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Session-level export/import (the core primitive under the fleet format).

TEST_F(FleetSnapshotTest, SessionExportImportResumesBitIdentically) {
  for (const bool stochastic : {false, true}) {
    const auto fresh = stochastic ? FreshModel(31, true) : nullptr;
    const core::Rl4Oasd* model = stochastic ? fresh.get() : model_;
    int checked = 0;
    for (const auto& lt : dataset_->trajs()) {
      if (lt.traj.edges.size() < 6 || ++checked > 8) break;
      const auto& t = lt.traj;
      auto session = model->StartSession(t.sd(), t.start_time);
      const size_t cut = t.edges.size() / 2;
      for (size_t i = 0; i < cut; ++i) session.Feed(t.edges[i]);
      (void)session.TakeNewlyClosedRuns();  // drain, as the monitor would

      BinaryWriter w;
      session.ExportState(&w);
      auto restored = model->StartSession({}, 0.0);
      BinaryReader r(w.buffer());
      ASSERT_TRUE(restored.ImportState(&r).ok());
      ASSERT_TRUE(r.AtEnd());
      EXPECT_EQ(restored.sd(), t.sd());
      EXPECT_EQ(restored.start_time(), t.start_time);
      EXPECT_EQ(restored.labels(), session.labels());

      // Export immediately again: the record must be byte-identical (the
      // format is canonical, not merely equivalent).
      BinaryWriter w2;
      restored.ExportState(&w2);
      EXPECT_EQ(w.buffer(), w2.buffer());

      // Continue both in lockstep: labels and run streams must agree
      // bit-for-bit, including the stochastic RNG draws.
      for (size_t i = cut; i < t.edges.size(); ++i) {
        EXPECT_EQ(restored.Feed(t.edges[i]), session.Feed(t.edges[i]))
            << "stochastic=" << stochastic << " step " << i;
      }
      EXPECT_EQ(restored.TakeNewlyClosedRuns(),
                session.TakeNewlyClosedRuns());
      EXPECT_EQ(restored.Finish(), session.Finish());
      EXPECT_EQ(restored.closed_runs(), session.closed_runs());
    }
    ASSERT_GT(checked, 0);
  }
}

TEST_F(FleetSnapshotTest, SessionImportRejectsLies) {
  // Hand-forged session records with internally inconsistent or
  // out-of-bounds fields must fail with a clean Status — never index the
  // road network or label history out of range.
  const size_t state_size = model_->rsrnet().stream_state_size();
  struct Lie {
    const char* name;
    traj::EdgeId edge1;       // second edge of the history
    uint8_t label1;           // second label
    int32_t tracker_pos;      // must equal the label count
    int32_t run_end;          // closed run [0, run_end)
    size_t state;             // hidden/cell vector length
  };
  const Lie lies[] = {
      {"edge id outside the network", 1 << 30, 1, 2, 2, state_size},
      {"label outside {0,1}", 1, 9, 2, 2, state_size},
      {"tracker position mismatch", 1, 1, 5, 2, state_size},
      {"run beyond the label stream", 1, 1, 2, 7, state_size},
      {"wrong recurrent state size", 1, 1, 2, 2, state_size + 3},
  };
  for (const Lie& lie : lies) {
    BinaryWriter w;
    w.WriteI32(0);  // sd.source
    w.WriteI32(5);  // sd.dest
    w.WriteF64(100.0);
    w.WriteU8(0);   // finished
    w.WriteU32(2);  // labels
    w.WriteU8(0);
    w.WriteU8(lie.label1);
    std::vector<int32_t> edges = {0, lie.edge1};
    w.WriteI32Vector(edges);
    w.WriteI32(lie.tracker_pos);  // tracker: pos
    w.WriteU8(0);                 // no pending run
    w.WriteI32(0);
    w.WriteI32(0);
    w.WriteU32(1);  // one closed run
    w.WriteI32(0);
    w.WriteI32(lie.run_end);
    w.WriteU32(0);  // no newly-closed runs
    w.WriteF32Vector(std::vector<float>(lie.state, 0.0f));
    w.WriteF32Vector(std::vector<float>(lie.state, 0.0f));
    for (int i = 0; i < 4; ++i) w.WriteU64(123);
    w.WriteU8(0);
    w.WriteF64(0.0);

    auto session = model_->StartSession({}, 0.0);
    BinaryReader r(w.buffer());
    EXPECT_FALSE(session.ImportState(&r).ok()) << lie.name;
    // The failed import must leave the session untouched and feedable.
    EXPECT_TRUE(session.labels().empty()) << lie.name;
  }
}

TEST_F(FleetSnapshotTest, StackedRnnNeverFedTripSnapshotRestores) {
  // Regression: a never-fed session's stream must already carry the full
  // num_layers * hidden state so its exported record round-trips — with a
  // stacked core, lazily sizing the stream to hidden_dim made a snapshot
  // the monitor itself just wrote unrestorable.
  core::Rl4OasdConfig cfg = TinyConfig();
  cfg.rsr.num_layers = 2;
  const auto model = std::make_shared<core::Rl4Oasd>(net_, cfg);
  const auto picks = PickTrips(3);

  EventSink sink;
  FleetMonitor monitor(model.get(), {}, &sink);
  // Vehicle 0 never fed; vehicle 1 fed a few points.
  ASSERT_TRUE(monitor.StartTrip(0, picks[0]->sd(), picks[0]->start_time).ok());
  ASSERT_TRUE(monitor.StartTrip(1, picks[1]->sd(), picks[1]->start_time).ok());
  for (size_t i = 0; i < 3 && i < picks[1]->edges.size(); ++i) {
    ASSERT_TRUE(monitor.Feed(1, picks[1]->edges[i], 2.0 * i).ok());
  }
  BinaryWriter w;
  ASSERT_TRUE(monitor.Snapshot(&w).ok());

  EventSink resumed_sink;
  FleetMonitor resumed(model.get(), {}, &resumed_sink);
  BinaryReader r(w.buffer());
  const Status st = resumed.Restore(&r);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(resumed.ActiveTrips(), 2u);
  // Both fleets finish the trips identically.
  for (FleetMonitor* m : {&monitor, &resumed}) {
    for (int64_t v : {0, 1}) {
      const auto& t = *picks[static_cast<size_t>(v)];
      for (size_t i = (v == 1 ? 3 : 0); i < t.edges.size(); ++i) {
        ASSERT_TRUE(m->Feed(v, t.edges[i], 2.0 * i).ok());
      }
    }
  }
  for (int64_t v : {0, 1}) {
    auto a = monitor.EndTrip(v);
    auto b = resumed.EndTrip(v);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "vehicle " << v;
  }
}

// ---------------------------------------------------------------------------
// Restore failure modes.

TEST_F(FleetSnapshotTest, RestoreRejectsDifferentModelFingerprint) {
  const auto picks = PickTrips(3);
  FleetMonitor monitor(model_, {}, nullptr);
  for (size_t v = 0; v < picks.size(); ++v) {
    ASSERT_TRUE(monitor
                    .StartTrip(static_cast<int64_t>(v), picks[v]->sd(),
                               picks[v]->start_time)
                    .ok());
    ASSERT_TRUE(
        monitor.Feed(static_cast<int64_t>(v), picks[v]->edges[0], 0.0).ok());
  }
  BinaryWriter w;
  ASSERT_TRUE(monitor.Snapshot(&w).ok());

  const auto other = FreshModel(404);
  FleetMonitor wrong_model(other.get(), {}, nullptr);
  BinaryReader r(w.buffer());
  const Status st = wrong_model.Restore(&r);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.ToString().find("fingerprint"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(wrong_model.ActiveTrips(), 0u);
}

TEST_F(FleetSnapshotTest, RestoreRequiresEmptyMonitor) {
  const auto picks = PickTrips(2);
  FleetMonitor monitor(model_, {}, nullptr);
  ASSERT_TRUE(monitor.StartTrip(1, picks[0]->sd(), 0.0).ok());
  BinaryWriter w;
  ASSERT_TRUE(monitor.Snapshot(&w).ok());

  FleetMonitor busy(model_, {}, nullptr);
  ASSERT_TRUE(busy.StartTrip(9, picks[1]->sd(), 0.0).ok());
  BinaryReader r(w.buffer());
  const Status st = busy.Restore(&r);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(busy.ActiveTrips(), 1u);
}

// ---------------------------------------------------------------------------
// Hot model swap.

TEST_F(FleetSnapshotTest, SwapModelMatchesReprimeReference) {
  // Monitor semantics must equal the core primitive: feed a prefix on model
  // A, swap to model B, feed the rest — labels and alerts come out as if
  // the session had been re-primed by ReprimeSession at the boundary.
  const auto fresh = FreshModel(777);
  const auto picks = PickTrips(6);

  EventSink sink;
  FleetMonitor monitor(model_, {}, &sink);
  std::vector<size_t> cuts(picks.size());
  for (size_t v = 0; v < picks.size(); ++v) {
    ASSERT_TRUE(monitor
                    .StartTrip(static_cast<int64_t>(v), picks[v]->sd(),
                               picks[v]->start_time)
                    .ok());
    cuts[v] = 1 + v % (picks[v]->edges.size() - 1);
  }
  for (size_t v = 0; v < picks.size(); ++v) {
    for (size_t i = 0; i < cuts[v]; ++i) {
      ASSERT_TRUE(
          monitor.Feed(static_cast<int64_t>(v), picks[v]->edges[i], 2.0 * i)
              .ok());
    }
  }
  const auto retired = monitor.SwapModel(fresh);
  EXPECT_EQ(retired.get(), model_);
  EXPECT_EQ(monitor.ModelGeneration(), 2u);
  EXPECT_EQ(monitor.model().get(), fresh.get());
  for (size_t v = 0; v < picks.size(); ++v) {
    for (size_t i = cuts[v]; i < picks[v]->edges.size(); ++i) {
      ASSERT_TRUE(
          monitor.Feed(static_cast<int64_t>(v), picks[v]->edges[i], 2.0 * i)
              .ok());
    }
  }
  std::map<int64_t, std::vector<uint8_t>> monitor_end_labels;
  for (size_t v = 0; v < picks.size(); ++v) {
    auto labels = monitor.EndTrip(static_cast<int64_t>(v));
    ASSERT_TRUE(labels.ok());
    monitor_end_labels[static_cast<int64_t>(v)] = *labels;
  }
  const auto monitor_events = sink.Take();

  for (size_t v = 0; v < picks.size(); ++v) {
    const auto& t = *picks[v];
    auto ref = model_->StartSession(t.sd(), t.start_time);
    for (size_t i = 0; i < cuts[v]; ++i) ref.Feed(t.edges[i]);
    auto swapped = fresh->detector().ReprimeSession(ref);
    for (size_t i = cuts[v]; i < t.edges.size(); ++i) swapped.Feed(t.edges[i]);
    const auto ref_labels = swapped.Finish();
    EXPECT_EQ(monitor_end_labels[static_cast<int64_t>(v)], ref_labels)
        << "vehicle " << v;
    // Alerts must equal the final runs exactly once each — nothing lost or
    // duplicated across the swap.
    const auto runs = traj::ExtractAnomalousRuns(ref_labels);
    const auto it = monitor_events.find(static_cast<int64_t>(v));
    const size_t alerts =
        it == monitor_events.end() ? 0 : it->second.alerts.size();
    ASSERT_EQ(alerts, runs.size()) << "vehicle " << v;
    for (size_t i = 0; i < runs.size(); ++i) {
      EXPECT_EQ(it->second.alerts[i].first, runs[i]) << "vehicle " << v;
    }
  }
}

TEST_F(FleetSnapshotTest, SwapModelRetiresOldModelViaSharedPtrHandoff) {
  auto first = FreshModel(11);
  auto second = FreshModel(22);
  const auto picks = PickTrips(4);

  auto monitor = std::make_unique<FleetMonitor>(first, FleetConfig{}, nullptr);
  for (size_t v = 0; v < picks.size(); ++v) {
    ASSERT_TRUE(monitor
                    ->StartTrip(static_cast<int64_t>(v), picks[v]->sd(),
                                picks[v]->start_time)
                    .ok());
  }
  auto retired = monitor->SwapModel(second);
  EXPECT_EQ(retired.get(), first.get());
  // Trips are still pinned to the retired model until their next point.
  EXPECT_GT(first.use_count(), 2);
  for (size_t v = 0; v < picks.size(); ++v) {
    ASSERT_TRUE(
        monitor->Feed(static_cast<int64_t>(v), picks[v]->edges[0], 1.0).ok());
  }
  // Every trip migrated: only this test's `first` and `retired` remain.
  EXPECT_EQ(first.use_count(), 2);
  retired.reset();
  EXPECT_EQ(first.use_count(), 1);
}

TEST_F(FleetSnapshotTest, SwapModelUnderConcurrentIngestConservesEverything) {
  // SwapModel racing FeedBatch callers racing an aggressive evictor (the CI
  // TSAN job runs this): stats must conserve, every callback must reach the
  // sink exactly once, and no torn model read may crash a wave.
  std::vector<std::shared_ptr<core::Rl4Oasd>> models;
  for (uint64_t s = 0; s < 3; ++s) models.push_back(FreshModel(100 + s));

  CollectingSink sink;
  FleetConfig cfg;
  cfg.trip_timeout_s = 50.0;
  cfg.num_shards = 4;
  cfg.micro_batch = 8;
  FleetMonitor monitor(models[0], cfg, &sink);

  constexpr int kThreads = 6;
  constexpr int kTripsPerThread = 8;
  std::atomic<int> started{0};
  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    uint64_t gen = 0;
    while (!stop.load()) {
      (void)monitor.SwapModel(models[++gen % models.size()]);
      std::this_thread::yield();
    }
  });
  std::thread evictor([&] {
    while (!stop.load()) {
      monitor.EvictStale(1e12);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      std::vector<FleetPoint> batch;
      for (int k = 0; k < kTripsPerThread; ++k) {
        const auto& lt =
            (*dataset_)[(static_cast<size_t>(th) * 19 +
                         static_cast<size_t>(k) * 3) %
                        dataset_->size()];
        const auto& t = lt.traj;
        if (t.edges.size() < 2) continue;
        const int64_t vid = th * 1000 + k;
        if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) continue;
        started.fetch_add(1);
        batch.clear();
        for (traj::EdgeId e : t.edges) {
          batch.push_back({vid, e, t.start_time});
          if (batch.size() == 12) {
            (void)monitor.FeedBatch(batch);
            batch.clear();
          }
        }
        if (!batch.empty()) (void)monitor.FeedBatch(batch);
        (void)monitor.EndTrip(vid);  // NotFound when the evictor won
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true);
  swapper.join();
  evictor.join();
  monitor.EvictStale(1e12);

  EXPECT_EQ(monitor.ActiveTrips(), 0u);
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.trips_started, started.load());
  EXPECT_EQ(stats.trips_started, stats.trips_finished + stats.trips_evicted);
  EXPECT_EQ(stats.alerts_emitted, static_cast<int64_t>(sink.NumAlerts()));
  EXPECT_EQ(stats.trips_finished, static_cast<int64_t>(sink.NumFinished()));
  EXPECT_EQ(stats.trips_evicted, static_cast<int64_t>(sink.NumEvicted()));
  // All trips drained: besides the local vector, only the monitor's current
  // handle pins one model — every retired model was handed back.
  const auto current = monitor.model();
  for (auto& m : models) {
    EXPECT_EQ(m.use_count(), m == current ? 3 : 1) << "model leaked";
  }
}

TEST_F(FleetSnapshotTest, SnapshotUnderLiveIngestStaysRestorable) {
  // Snapshots taken while FeedBatch callers and the evictor are running
  // must parse and restore cleanly (also a TSAN subject). Per-trip records
  // serialize at feed boundaries, so every snapshot is restorable even
  // though the global cut is not a quiescent point.
  CollectingSink sink;
  FleetConfig cfg;
  cfg.num_shards = 4;
  cfg.micro_batch = 8;
  FleetMonitor monitor(model_, cfg, &sink);

  constexpr int kThreads = 4;
  std::atomic<int> workers_done{0};
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int k = 0; k < 6; ++k) {
        const auto& t =
            (*dataset_)[(static_cast<size_t>(th) * 23 +
                         static_cast<size_t>(k) * 7) %
                        dataset_->size()]
                .traj;
        if (t.edges.size() < 2) continue;
        const int64_t vid = th * 1000 + k;
        if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) continue;
        std::vector<FleetPoint> batch;
        for (traj::EdgeId e : t.edges) batch.push_back({vid, e, t.start_time});
        (void)monitor.FeedBatch(batch);
        (void)monitor.EndTrip(vid);
      }
      workers_done.fetch_add(1);
    });
  }
  int restorable = 0;
  do {
    // No SwapModel in flight, so every live snapshot must restore cleanly.
    BinaryWriter w;
    ASSERT_TRUE(monitor.Snapshot(&w).ok());
    FleetMonitor resumed(model_, cfg, nullptr);
    BinaryReader r(w.buffer());
    FleetMonitor::RestoreInfo info;
    ASSERT_TRUE(resumed.Restore(&r, &info).ok());
    EXPECT_EQ(resumed.ActiveTrips(), info.trips.size());
    // Conservation must hold after every restore, even though the source
    // snapshot's counters and trip walk happened at different instants
    // under live ingest (Restore re-derives the started count).
    const FleetStats rs = resumed.Stats();
    EXPECT_EQ(rs.trips_started,
              rs.trips_finished + rs.trips_evicted +
                  static_cast<int64_t>(resumed.ActiveTrips()));
    ++restorable;
    std::this_thread::yield();
  } while (workers_done.load() < kThreads);
  for (auto& th : threads) th.join();
  EXPECT_GT(restorable, 0);
}

}  // namespace
}  // namespace rl4oasd::serve
