// Tests for the fleet monitoring service: trip lifecycle, alert-on-formation
// semantics, eviction, service counters, and thread-safe concurrent ingest.
#include <algorithm>
#include <atomic>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/model_io.h"
#include "serve/fleet.h"
#include "test_util.h"

namespace rl4oasd::serve {
namespace {

/// One small trained model shared by every test in the suite (training takes
/// a few seconds; the tests only need a consistent detector).
class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new roadnet::RoadNetwork(testing::SmallGrid());
    dataset_ = new traj::Dataset(testing::SmallDataset(*net_, 6, 0.12));
    core::Rl4OasdConfig cfg;
    cfg.preprocess.alpha = 0.1;
    cfg.preprocess.delta = 0.12;
    cfg.detector.delay_d = 2;
    cfg.rsr.embed_dim = 16;
    cfg.rsr.nrf_dim = 8;
    cfg.rsr.hidden_dim = 16;
    cfg.asd.label_dim = 8;
    cfg.embedding.dim = 16;
    cfg.embedding.epochs = 1;
    cfg.pretrain_samples = 60;
    cfg.pretrain_epochs = 2;
    cfg.joint_samples = 120;
    cfg.epochs_per_traj = 1;
    model_ = new core::Rl4Oasd(net_, cfg);
    model_->Fit(*dataset_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    delete net_;
    model_ = nullptr;
    dataset_ = nullptr;
    net_ = nullptr;
  }

  /// Feeds a whole trajectory through the monitor as vehicle `vid`.
  static std::vector<uint8_t> RunTrip(FleetMonitor* monitor, int64_t vid,
                                      const traj::MapMatchedTrajectory& t) {
    EXPECT_TRUE(monitor->StartTrip(vid, t.sd(), t.start_time).ok());
    double ts = t.start_time;
    for (traj::EdgeId e : t.edges) {
      auto label = monitor->Feed(vid, e, ts);
      EXPECT_TRUE(label.ok());
      ts += 2.0;  // paper sampling rate: 2-4 s
    }
    auto labels = monitor->EndTrip(vid);
    EXPECT_TRUE(labels.ok());
    return labels.ValueOr({});
  }

  static roadnet::RoadNetwork* net_;
  static traj::Dataset* dataset_;
  static core::Rl4Oasd* model_;
};

roadnet::RoadNetwork* FleetTest::net_ = nullptr;
traj::Dataset* FleetTest::dataset_ = nullptr;
core::Rl4Oasd* FleetTest::model_ = nullptr;

TEST_F(FleetTest, TripLifecycle) {
  CollectingSink sink;
  FleetMonitor monitor(model_, {}, &sink);
  const auto& t = (*dataset_)[0].traj;

  EXPECT_EQ(monitor.ActiveTrips(), 0u);
  ASSERT_TRUE(monitor.StartTrip(7, t.sd(), t.start_time).ok());
  EXPECT_EQ(monitor.ActiveTrips(), 1u);

  for (traj::EdgeId e : t.edges) {
    auto label = monitor.Feed(7, e, t.start_time);
    ASSERT_TRUE(label.ok());
    EXPECT_TRUE(*label == 0 || *label == 1);
  }
  auto labels = monitor.EndTrip(7);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->size(), t.edges.size());
  EXPECT_EQ(monitor.ActiveTrips(), 0u);

  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.trips_started, 1);
  EXPECT_EQ(stats.trips_finished, 1);
  EXPECT_EQ(stats.points_processed,
            static_cast<int64_t>(t.edges.size()));
  EXPECT_EQ(sink.NumFinished(), 1u);
}

TEST_F(FleetTest, MonitorLabelsMatchBatchDetection) {
  // The streaming service must reproduce Rl4Oasd::Detect exactly.
  CollectingSink sink;
  FleetMonitor monitor(model_, {}, &sink);
  for (size_t i = 0; i < 30; ++i) {
    const auto& t = (*dataset_)[i].traj;
    if (t.edges.size() < 2) continue;
    EXPECT_EQ(RunTrip(&monitor, static_cast<int64_t>(i), t),
              model_->Detect(t))
        << "trajectory " << i;
  }
}

TEST_F(FleetTest, DoubleStartRejected) {
  FleetMonitor monitor(model_, {}, nullptr);
  const auto& t = (*dataset_)[0].traj;
  ASSERT_TRUE(monitor.StartTrip(1, t.sd(), 0.0).ok());
  const Status st = monitor.StartTrip(1, t.sd(), 0.0);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(FleetTest, FeedAndEndWithoutStartRejected) {
  FleetMonitor monitor(model_, {}, nullptr);
  EXPECT_EQ(monitor.Feed(99, 0, 0.0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(monitor.EndTrip(99).status().code(), StatusCode::kNotFound);
}

TEST_F(FleetTest, AnomalousTripEmitsAlert) {
  CollectingSink sink;
  FleetMonitor monitor(model_, {}, &sink);
  // Find anomalous trajectories the batch detector actually flags, and
  // verify the streaming path alerts on them.
  int checked = 0;
  int64_t vid = 1000;
  for (const auto& lt : dataset_->trajs()) {
    if (!lt.HasAnomaly() || lt.traj.edges.size() < 2) continue;
    const auto batch = model_->Detect(lt.traj);
    const auto batch_runs = traj::ExtractAnomalousRuns(batch);
    if (batch_runs.empty()) continue;

    const size_t alerts_before = sink.NumAlerts();
    RunTrip(&monitor, vid++, lt.traj);
    EXPECT_GT(sink.NumAlerts(), alerts_before)
        << "trajectory " << lt.traj.id << " flagged in batch but no alert";
    if (++checked >= 5) break;
  }
  EXPECT_GT(checked, 0) << "dataset produced no detectable anomalies";
}

TEST_F(FleetTest, AlertRangesMatchFinalRuns) {
  CollectingSink sink;
  FleetMonitor monitor(model_, {}, &sink);
  for (const auto& lt : dataset_->trajs()) {
    if (!lt.HasAnomaly() || lt.traj.edges.size() < 2) continue;
    const auto labels = RunTrip(&monitor, 1, lt.traj);
    const auto final_runs = traj::ExtractAnomalousRuns(labels);
    const auto alerts = sink.TakeAlerts();
    // Every alert must correspond to an anomalous region: each alerted range
    // overlaps some final run (DL post-processing may extend boundaries).
    for (const Alert& a : alerts) {
      bool overlaps = false;
      for (const auto& r : final_runs) {
        if (a.range.begin < r.end && r.begin < a.range.end) overlaps = true;
      }
      EXPECT_TRUE(overlaps) << "alert [" << a.range.begin << ","
                            << a.range.end << ") matches no final run";
    }
    // And every final run was alerted at least once.
    if (!final_runs.empty()) {
      EXPECT_GE(alerts.size(), final_runs.size());
    }
    break;
  }
}

TEST_F(FleetTest, StatsCountAlerts) {
  CollectingSink sink;
  FleetMonitor monitor(model_, {}, &sink);
  int64_t vid = 0;
  for (size_t i = 0; i < 40; ++i) {
    const auto& t = (*dataset_)[i].traj;
    if (t.edges.size() < 2) continue;
    RunTrip(&monitor, vid++, t);
  }
  EXPECT_EQ(monitor.Stats().alerts_emitted,
            static_cast<int64_t>(sink.NumAlerts()));
}

TEST_F(FleetTest, EvictStaleDropsIdleTrips) {
  FleetConfig cfg;
  cfg.trip_timeout_s = 100.0;
  FleetMonitor monitor(model_, cfg, nullptr);
  const auto& t = (*dataset_)[0].traj;
  ASSERT_TRUE(monitor.StartTrip(1, t.sd(), 0.0).ok());
  ASSERT_TRUE(monitor.StartTrip(2, t.sd(), 0.0).ok());
  ASSERT_TRUE(monitor.Feed(2, t.edges[0], 500.0).ok());

  // Vehicle 1 last updated at t=0, vehicle 2 at t=500.
  EXPECT_EQ(monitor.EvictStale(550.0), 1u);
  EXPECT_EQ(monitor.ActiveTrips(), 1u);
  EXPECT_EQ(monitor.Feed(1, t.edges[0], 551.0).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(monitor.Feed(2, t.edges[1], 551.0).ok());
  EXPECT_EQ(monitor.Stats().trips_evicted, 1);
}

TEST_F(FleetTest, MaxActiveTripsEvictsStalest) {
  FleetConfig cfg;
  cfg.max_active_trips = 3;
  FleetMonitor monitor(model_, cfg, nullptr);
  const auto& t = (*dataset_)[0].traj;
  for (int64_t v = 0; v < 3; ++v) {
    ASSERT_TRUE(monitor.StartTrip(v, t.sd(), 100.0 * static_cast<double>(v))
                    .ok());
  }
  EXPECT_EQ(monitor.ActiveTrips(), 3u);
  // The cap is reached: starting a fourth evicts vehicle 0 (stalest).
  ASSERT_TRUE(monitor.StartTrip(100, t.sd(), 400.0).ok());
  EXPECT_EQ(monitor.ActiveTrips(), 3u);
  EXPECT_EQ(monitor.Feed(0, t.edges[0], 401.0).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FleetTest, AlertsMatchFinalRunsExactlyOncePerRun) {
  // The duplicate/lost-alert regression at the service level: for every
  // trip, the alert stream must equal the final post-processed runs exactly
  // — one alert per run, begins strictly increasing, nothing re-reported
  // when Delayed Labeling merges fragments and nothing skipped.
  int64_t vid = 5000;
  for (const auto& lt : dataset_->trajs()) {
    if (lt.traj.edges.size() < 2) continue;
    CollectingSink sink;
    FleetMonitor monitor(model_, {}, &sink);
    const auto labels = RunTrip(&monitor, vid++, lt.traj);
    const auto final_runs = traj::ExtractAnomalousRuns(labels);
    const auto alerts = sink.TakeAlerts();
    ASSERT_EQ(alerts.size(), final_runs.size()) << "trajectory " << lt.traj.id;
    for (size_t i = 0; i < alerts.size(); ++i) {
      EXPECT_EQ(alerts[i].range, final_runs[i]) << "trajectory " << lt.traj.id;
      if (i > 0) {
        EXPECT_GT(alerts[i].range.begin, alerts[i - 1].range.begin);
      }
    }
  }
}

TEST_F(FleetTest, EvictionAlertsOpenTailAndNotifiesSink) {
  // Find a trajectory whose streaming session still reports an anomaly at
  // the end of the feed, replay it without EndTrip, and evict: every run
  // (finalized or still open) must have been alerted, and the sink must be
  // told about the eviction — nothing vanishes silently.
  for (const auto& lt : dataset_->trajs()) {
    if (!lt.HasAnomaly() || lt.traj.edges.size() < 2) continue;
    auto reference = model_->StartSession(lt.traj.sd(), lt.traj.start_time);
    for (traj::EdgeId e : lt.traj.edges) reference.Feed(e);
    const auto expected = reference.CurrentAnomalies();
    if (expected.empty()) continue;

    CollectingSink sink;
    FleetConfig cfg;
    cfg.trip_timeout_s = 100.0;
    FleetMonitor monitor(model_, cfg, &sink);
    ASSERT_TRUE(
        monitor.StartTrip(42, lt.traj.sd(), lt.traj.start_time).ok());
    for (traj::EdgeId e : lt.traj.edges) {
      ASSERT_TRUE(monitor.Feed(42, e, lt.traj.start_time).ok());
    }
    ASSERT_EQ(monitor.EvictStale(lt.traj.start_time + 500.0), 1u);

    const auto alerts = sink.TakeAlerts();
    ASSERT_EQ(alerts.size(), expected.size());
    for (size_t i = 0; i < alerts.size(); ++i) {
      EXPECT_EQ(alerts[i].range, expected[i]);
      // (vehicle_id, trip_start_time) identifies the trip across restarts.
      EXPECT_EQ(alerts[i].trip_start_time, lt.traj.start_time);
    }
    const auto evicted = sink.TakeEvicted();
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].first, 42);
    EXPECT_EQ(evicted[0].second.size(), lt.traj.edges.size());
    EXPECT_EQ(sink.NumFinished(), 0u);
    const FleetStats stats = monitor.Stats();
    EXPECT_EQ(stats.trips_evicted, 1);
    EXPECT_EQ(stats.alerts_emitted, static_cast<int64_t>(alerts.size()));
    EXPECT_EQ(monitor.ActiveTrips(), 0u);
    return;  // one qualifying trajectory is enough
  }
  GTEST_SKIP() << "dataset produced no trip with a detectable anomaly";
}

TEST_F(FleetTest, DuplicateStartAtCapEvictsNothing) {
  // A StartTrip that fails (duplicate vehicle) must not evict a live trip
  // to make room for the trip it never starts.
  CollectingSink sink;
  FleetConfig cfg;
  cfg.max_active_trips = 1;
  FleetMonitor monitor(model_, cfg, &sink);
  const auto& t = (*dataset_)[0].traj;
  ASSERT_TRUE(monitor.StartTrip(1, t.sd(), 0.0).ok());
  EXPECT_EQ(monitor.StartTrip(1, t.sd(), 5.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(monitor.ActiveTrips(), 1u);
  EXPECT_EQ(monitor.Stats().trips_evicted, 0);
  EXPECT_EQ(sink.NumEvicted(), 0u);
}

/// Parks the *first* eviction callback until the test opens the gate, and
/// records every victim. Lets a test freeze one StartTrip inside its
/// eviction (mid-admission) while another runs to completion — the exact
/// interleaving behind the historical cap-overshoot race, made
/// deterministic (no reliance on scheduler timing, works on one core).
class EvictGateSink : public AlertSink {
 public:
  void OnAlert(const Alert&) override {}
  void OnTripEvicted(int64_t vehicle_id, double /*trip_start_time*/,
                     const std::vector<uint8_t>&) override {
    common::MutexLock lock(&mu_);
    victims_.push_back(vehicle_id);
    if (victims_.size() == 1) {
      entered_cv_.NotifyAll();
      while (!open_) gate_cv_.Wait(&mu_);
    }
  }
  void AwaitFirstEviction() {
    common::MutexLock lock(&mu_);
    while (victims_.empty()) entered_cv_.Wait(&mu_);
  }
  void Open() {
    common::MutexLock lock(&mu_);
    open_ = true;
    gate_cv_.NotifyAll();
  }
  std::vector<int64_t> Victims() {
    common::MutexLock lock(&mu_);
    return victims_;
  }

 private:
  mutable common::Mutex mu_;
  common::CondVar entered_cv_;
  common::CondVar gate_cv_;
  std::vector<int64_t> victims_ RL4OASD_GUARDED_BY(mu_);
  bool open_ RL4OASD_GUARDED_BY(mu_) = false;
};

TEST_F(FleetTest, StartTripRacingEvictionNeverOvershootsCap) {
  // Deterministic regression for the StartTrip cap race. Old order:
  // check-active-then-evict-then-insert. Freeze starter A inside the
  // eviction it performs for its own admission (the victim is already
  // removed and uncounted, A's trip not yet inserted); let starter B run
  // start-to-finish in that window. B observes active < cap, skips
  // eviction, and admits; when A resumes and inserts, active lands above
  // the cap — and *stays* there, because nothing ever re-checks. With
  // reservation atomic to admission, each over-cap admission pays its own
  // eviction and the final count is exactly the cap, whatever the
  // interleaving.
  const auto& t = (*dataset_)[0].traj;
  EvictGateSink sink;
  FleetConfig cfg;
  cfg.max_active_trips = 1;
  FleetMonitor monitor(model_, cfg, &sink);
  ASSERT_TRUE(monitor.StartTrip(1, t.sd(), 0.0).ok());

  std::thread starter_a([&] {
    ASSERT_TRUE(monitor.StartTrip(2, t.sd(), 20.0).ok());
  });
  sink.AwaitFirstEviction();  // A is frozen mid-StartTrip, mid-eviction
  ASSERT_TRUE(monitor.StartTrip(3, t.sd(), 30.0).ok());
  sink.Open();
  starter_a.join();

  // Quiescent now: the cap must hold exactly, and every trip must be
  // accounted for.
  EXPECT_EQ(monitor.ActiveTrips(), 1u);
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.trips_started, 3);
  EXPECT_EQ(stats.trips_started,
            stats.trips_evicted + static_cast<int64_t>(monitor.ActiveTrips()));
  const auto victims = sink.Victims();
  EXPECT_EQ(victims.size(), static_cast<size_t>(stats.trips_evicted));
  EXPECT_EQ(victims[0], 1);  // the stalest trip goes first
}

TEST_F(FleetTest, RacingDuplicateStartNeverEvictsInnocent) {
  // Regression: StartTrip used to evict *before* inserting, so when two
  // threads raced a start for the same vehicle at the cap, the loser passed
  // the duplicate pre-check, evicted an innocent stalest trip, and then
  // failed at the insert anyway — the fleet lost a live trip for a start
  // that never happened. Post-fix only an admitted start evicts, so each
  // round must evict exactly one trip (paid by the winner) and the
  // second-stalest trip must survive.
  const auto& t = (*dataset_)[0].traj;
  for (int iter = 0; iter < 25; ++iter) {
    CollectingSink sink;
    FleetConfig cfg;
    cfg.max_active_trips = 2;
    FleetMonitor monitor(model_, cfg, &sink);
    ASSERT_TRUE(monitor.StartTrip(1, t.sd(), 0.0).ok());   // stalest: fair game
    ASSERT_TRUE(monitor.StartTrip(2, t.sd(), 10.0).ok());  // innocent bystander
    std::atomic<int> admitted{0};
    std::atomic<int> rejected{0};
    // Spin barrier: both racers enter StartTrip together, so both pass the
    // duplicate pre-check before either inserts.
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    auto racer = [&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      const Status st = monitor.StartTrip(3, t.sd(), 20.0);
      if (st.ok()) {
        admitted.fetch_add(1);
      } else if (st.code() == StatusCode::kFailedPrecondition) {
        rejected.fetch_add(1);
      }
    };
    std::thread a(racer);
    std::thread b(racer);
    while (ready.load() != 2) {
    }
    go.store(true, std::memory_order_release);
    a.join();
    b.join();
    EXPECT_EQ(admitted.load(), 1);
    EXPECT_EQ(rejected.load(), 1);
    // Exactly one eviction — the winner's — and the victim is the stalest
    // trip, never the bystander.
    EXPECT_EQ(monitor.ActiveTrips(), 2u);
    EXPECT_EQ(monitor.Stats().trips_evicted, 1);
    const auto evicted = sink.TakeEvicted();
    ASSERT_EQ(evicted.size(), 1u) << "iteration " << iter;
    EXPECT_EQ(evicted[0].first, 1) << "iteration " << iter;
    EXPECT_TRUE(monitor.Feed(2, t.edges[0], 30.0).ok());
  }
}

TEST_F(FleetTest, ConcurrentStartersNeverOvershootCap) {
  // Regression: StartTrip used to check the cap before inserting, so N
  // concurrent starters could each observe active < cap and admit cap+N-1
  // trips with nobody evicting — and once the count sat above the cap,
  // nothing ever brought it back down. Reservation is now atomic with
  // admission (distinct indices), so every over-cap admission evicts
  // exactly once and the quiescent count lands exactly on the cap. Each
  // round is a barrier-synced burst of starters crossing the cap boundary
  // together (the racy moment). Runs under the CI ThreadSanitizer job.
  const auto& t = (*dataset_)[0].traj;
  constexpr size_t kCap = 4;
  constexpr int kThreads = 8;
  constexpr int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    CollectingSink sink;
    FleetConfig cfg;
    cfg.max_active_trips = kCap;
    cfg.num_shards = 4;  // force cross-thread shard sharing
    FleetMonitor monitor(model_, cfg, &sink);
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int th = 0; th < kThreads; ++th) {
      threads.emplace_back([&, th] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        ASSERT_TRUE(monitor.StartTrip(th, t.sd(), static_cast<double>(th))
                        .ok());
      });
    }
    while (ready.load() != kThreads) {
    }
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    // Quiescent: every over-cap admission has paid its eviction.
    EXPECT_EQ(monitor.ActiveTrips(), kCap) << "round " << round;
    const FleetStats stats = monitor.Stats();
    EXPECT_EQ(stats.trips_started, kThreads);
    EXPECT_EQ(stats.trips_started,
              stats.trips_evicted + static_cast<int64_t>(kCap));
    EXPECT_EQ(stats.trips_evicted, static_cast<int64_t>(sink.NumEvicted()));
  }
}

TEST_F(FleetTest, CapEvictionNotifiesSink) {
  CollectingSink sink;
  FleetConfig cfg;
  cfg.max_active_trips = 2;
  FleetMonitor monitor(model_, cfg, &sink);
  const auto& t = (*dataset_)[0].traj;
  ASSERT_TRUE(monitor.StartTrip(1, t.sd(), 0.0).ok());
  ASSERT_TRUE(monitor.StartTrip(2, t.sd(), 10.0).ok());
  // The cap is reached: the third start evicts vehicle 1 (stalest) and the
  // sink hears about it.
  ASSERT_TRUE(monitor.StartTrip(3, t.sd(), 20.0).ok());
  const auto evicted = sink.TakeEvicted();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].first, 1);
  EXPECT_EQ(monitor.Stats().trips_evicted, 1);
  EXPECT_EQ(monitor.ActiveTrips(), 2u);
}

TEST_F(FleetTest, FingerprintIdenticalSwapRejectedAsNoOp) {
  // SwapModel's contract: a fine-tuned refresh arrives as a separate
  // instance with different bytes. A byte-identical handle (here: a clone)
  // cannot change served behaviour, so the swap is rejected — the incoming
  // model is returned unchanged, the generation does not advance, and no
  // in-flight trip pays a re-prime.
  CollectingSink sink;
  FleetMonitor monitor(model_, {}, &sink);
  const auto& t = (*dataset_)[0].traj;
  ASSERT_TRUE(monitor.StartTrip(1, t.sd(), t.start_time).ok());
  ASSERT_TRUE(monitor.Feed(1, t.edges[0], t.start_time).ok());

  const uint64_t gen_before = monitor.ModelGeneration();
  const auto live_before = monitor.model();
  auto clone_result = io::CloneModel(net_, *model_);
  ASSERT_TRUE(clone_result.ok()) << clone_result.status().ToString();
  std::shared_ptr<const core::Rl4Oasd> clone = std::move(clone_result).value();

  const auto returned = monitor.SwapModel(clone);
  EXPECT_EQ(returned.get(), clone.get());
  EXPECT_EQ(monitor.ModelGeneration(), gen_before);
  EXPECT_EQ(monitor.model().get(), live_before.get());

  // The mid-flight trip streams on as if the call never happened.
  for (size_t i = 1; i < t.edges.size(); ++i) {
    ASSERT_TRUE(
        monitor.Feed(1, t.edges[i], t.start_time + 2.0 * static_cast<double>(i))
            .ok());
  }
  auto labels = monitor.EndTrip(1);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, model_->Detect(t));
}

TEST_F(FleetTest, FeedBatchMatchesPerPointFeed) {
  // The same two trajectories, interleaved into batches, must produce the
  // same labels and the same alerts as per-point Feed.
  const traj::MapMatchedTrajectory* a = nullptr;
  const traj::MapMatchedTrajectory* b = nullptr;
  for (const auto& lt : dataset_->trajs()) {
    if (lt.traj.edges.size() < 2) continue;
    if (a == nullptr) {
      a = &lt.traj;
    } else if (lt.HasAnomaly()) {
      b = &lt.traj;
      break;
    }
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  CollectingSink per_point_sink;
  FleetMonitor per_point(model_, {}, &per_point_sink);
  const auto labels_a = RunTrip(&per_point, 1, *a);
  const auto labels_b = RunTrip(&per_point, 2, *b);

  CollectingSink batch_sink;
  FleetMonitor batched(model_, {}, &batch_sink);
  ASSERT_TRUE(batched.StartTrip(1, a->sd(), a->start_time).ok());
  ASSERT_TRUE(batched.StartTrip(2, b->sd(), b->start_time).ok());
  std::vector<FleetPoint> points;
  for (size_t i = 0; i < std::max(a->edges.size(), b->edges.size()); ++i) {
    if (i < a->edges.size()) {
      points.push_back({1, a->edges[i], a->start_time + 2.0 * i});
    }
    if (i < b->edges.size()) {
      points.push_back({2, b->edges[i], b->start_time + 2.0 * i});
    }
  }
  // Feed in uneven chunks to exercise batch boundaries.
  size_t offset = 0;
  size_t fed = 0;
  for (size_t chunk = 7; offset < points.size(); chunk = chunk * 2 + 1) {
    const size_t n = std::min(chunk, points.size() - offset);
    fed += batched.FeedBatch(
        std::span<const FleetPoint>(points.data() + offset, n));
    offset += n;
  }
  EXPECT_EQ(fed, points.size());
  // A batch point for an unknown vehicle is skipped, not fatal.
  const FleetPoint stray{99, a->edges[0], 0.0};
  EXPECT_EQ(batched.FeedBatch(std::span<const FleetPoint>(&stray, 1)), 0u);

  auto batch_a = batched.EndTrip(1);
  auto batch_b = batched.EndTrip(2);
  ASSERT_TRUE(batch_a.ok());
  ASSERT_TRUE(batch_b.ok());
  EXPECT_EQ(*batch_a, labels_a);
  EXPECT_EQ(*batch_b, labels_b);
  EXPECT_EQ(batch_sink.NumAlerts(), per_point_sink.NumAlerts());
  EXPECT_EQ(batched.Stats().points_processed,
            static_cast<int64_t>(points.size()));
}

TEST_F(FleetTest, FeedBatchMicroBatchingMatchesPerPointFeed) {
  // Wide waves: many concurrent trips interleaved round-robin, so FeedBatch
  // fuses real multi-trip model steps. Labels, per-vehicle alert sequences
  // (exactly-once, same run boundaries), and counters must all match the
  // per-point path.
  std::vector<const traj::MapMatchedTrajectory*> picks;
  for (const auto& lt : dataset_->trajs()) {
    if (lt.traj.edges.size() >= 2) picks.push_back(&lt.traj);
    if (picks.size() == 24) break;
  }
  ASSERT_GE(picks.size(), 8u);

  CollectingSink per_point_sink;
  FleetMonitor per_point(model_, {}, &per_point_sink);
  std::vector<std::vector<uint8_t>> expected(picks.size());
  for (size_t i = 0; i < picks.size(); ++i) {
    expected[i] = RunTrip(&per_point, static_cast<int64_t>(i), *picks[i]);
  }

  // Interleave one point per trip per round into one big point stream.
  std::vector<FleetPoint> points;
  size_t longest = 0;
  for (const auto* t : picks) longest = std::max(longest, t->edges.size());
  for (size_t i = 0; i < longest; ++i) {
    for (size_t v = 0; v < picks.size(); ++v) {
      if (i < picks[v]->edges.size()) {
        points.push_back({static_cast<int64_t>(v), picks[v]->edges[i],
                          picks[v]->start_time + 2.0 * static_cast<double>(i)});
      }
    }
  }

  for (const size_t micro_batch : {size_t{1}, size_t{4}, size_t{128}}) {
    CollectingSink batch_sink;
    FleetConfig cfg;
    cfg.micro_batch = micro_batch;
    FleetMonitor batched(model_, cfg, &batch_sink);
    for (size_t v = 0; v < picks.size(); ++v) {
      ASSERT_TRUE(batched
                      .StartTrip(static_cast<int64_t>(v), picks[v]->sd(),
                                 picks[v]->start_time)
                      .ok());
    }
    // Uneven chunks exercise both wide waves and ragged final batches.
    size_t offset = 0;
    size_t fed = 0;
    for (size_t chunk = 173; offset < points.size(); chunk = chunk * 2 + 7) {
      const size_t n = std::min(chunk, points.size() - offset);
      fed += batched.FeedBatch(
          std::span<const FleetPoint>(points.data() + offset, n));
      offset += n;
    }
    EXPECT_EQ(fed, points.size()) << "micro_batch " << micro_batch;
    for (size_t v = 0; v < picks.size(); ++v) {
      auto labels = batched.EndTrip(static_cast<int64_t>(v));
      ASSERT_TRUE(labels.ok());
      EXPECT_EQ(*labels, expected[v])
          << "vehicle " << v << " micro_batch " << micro_batch;
    }
    // Per-vehicle alert sequences must match exactly (cross-vehicle order
    // may differ between ingest strategies).
    auto split_by_vehicle = [&](std::vector<Alert> alerts) {
      std::vector<std::vector<traj::Subtrajectory>> by_vehicle(picks.size());
      for (const Alert& a : alerts) {
        by_vehicle[static_cast<size_t>(a.vehicle_id)].push_back(a.range);
      }
      return by_vehicle;
    };
    const auto batch_alerts = split_by_vehicle(batch_sink.TakeAlerts());
    const auto point_alerts = split_by_vehicle(per_point_sink.TakeAlerts());
    for (size_t v = 0; v < picks.size(); ++v) {
      EXPECT_EQ(batch_alerts[v], point_alerts[v])
          << "vehicle " << v << " micro_batch " << micro_batch;
    }
    // Re-collect the per-point alerts for the next micro_batch round.
    for (size_t v = 0; v < picks.size(); ++v) {
      for (const auto& r : point_alerts[v]) {
        per_point_sink.OnAlert(Alert{static_cast<int64_t>(v),
                                     picks[v]->sd(), picks[v]->start_time, r,
                                     0.0, 0});
      }
    }
    EXPECT_EQ(batched.Stats().points_processed,
              static_cast<int64_t>(points.size()));
  }
}

TEST_F(FleetTest, FeedBatchSameVehicleRunStaysOrdered) {
  // All points of one vehicle in a single batch: micro-batching degenerates
  // to one-point waves for that trip, and the result must equal Feed.
  const traj::MapMatchedTrajectory* pick = nullptr;
  for (const auto& lt : dataset_->trajs()) {
    if (lt.HasAnomaly() && lt.traj.edges.size() >= 4) {
      pick = &lt.traj;
      break;
    }
  }
  ASSERT_NE(pick, nullptr);
  CollectingSink per_point_sink;
  FleetMonitor per_point(model_, {}, &per_point_sink);
  const auto expected = RunTrip(&per_point, 7, *pick);

  CollectingSink batch_sink;
  FleetMonitor batched(model_, {}, &batch_sink);
  ASSERT_TRUE(batched.StartTrip(7, pick->sd(), pick->start_time).ok());
  std::vector<FleetPoint> points;
  for (size_t i = 0; i < pick->edges.size(); ++i) {
    points.push_back({7, pick->edges[i], pick->start_time + 2.0 * i});
  }
  EXPECT_EQ(batched.FeedBatch(points), points.size());
  auto labels = batched.EndTrip(7);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, expected);
  EXPECT_EQ(batch_sink.NumAlerts(), per_point_sink.NumAlerts());
}

TEST_F(FleetTest, FeedBatchConservationUnderConcurrentEviction) {
  // FeedBatch counterpart of the stress test above: batched ingest from
  // many threads with an aggressive evictor yanking trips between waves
  // (runs under the CI ThreadSanitizer job). A batch point whose trip is
  // evicted mid-batch takes the Feed fallback, which either reaches the
  // vehicle's live trip or is dropped — either way the counters must
  // conserve and every alert/lifecycle event reaches the sink exactly once.
  CollectingSink sink;
  FleetConfig cfg;
  cfg.trip_timeout_s = 50.0;
  cfg.num_shards = 4;
  cfg.micro_batch = 8;
  FleetMonitor monitor(model_, cfg, &sink);

  constexpr int kThreads = 8;
  constexpr int kTripsPerThread = 8;
  std::atomic<int> started{0};
  std::atomic<bool> stop_evictor{false};
  std::thread evictor([&] {
    while (!stop_evictor.load()) {
      monitor.EvictStale(1e12);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      std::vector<FleetPoint> batch;
      for (int k = 0; k < kTripsPerThread; ++k) {
        const auto& lt =
            (*dataset_)[(static_cast<size_t>(th) * 17 +
                         static_cast<size_t>(k) * 5) %
                        dataset_->size()];
        const auto& t = lt.traj;
        if (t.edges.size() < 2) continue;
        const int64_t vid = th * 1000 + k;
        if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) continue;
        started.fetch_add(1);
        batch.clear();
        for (traj::EdgeId e : t.edges) {
          batch.push_back({vid, e, t.start_time});
          if (batch.size() == 16) {
            (void)monitor.FeedBatch(batch);
            batch.clear();
          }
        }
        if (!batch.empty()) (void)monitor.FeedBatch(batch);
        (void)monitor.EndTrip(vid);  // NotFound when the evictor won
      }
    });
  }
  for (auto& th : threads) th.join();
  stop_evictor.store(true);
  evictor.join();
  monitor.EvictStale(1e12);

  EXPECT_EQ(monitor.ActiveTrips(), 0u);
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.trips_started, started.load());
  EXPECT_EQ(stats.trips_started, stats.trips_finished + stats.trips_evicted);
  EXPECT_EQ(stats.alerts_emitted, static_cast<int64_t>(sink.NumAlerts()));
  EXPECT_EQ(stats.trips_finished, static_cast<int64_t>(sink.NumFinished()));
  EXPECT_EQ(stats.trips_evicted, static_cast<int64_t>(sink.NumEvicted()));
}

TEST_F(FleetTest, ConcurrentFeedBatchCallersShareWaves) {
  // Several threads pushing interleaved multi-vehicle batches at once:
  // wave locking must not deadlock (consistent Trip-address order), and
  // every label sequence must still match the serial detector.
  std::vector<const traj::LabeledTrajectory*> picks;
  for (const auto& lt : dataset_->trajs()) {
    if (lt.traj.edges.size() >= 2) picks.push_back(&lt);
    if (picks.size() == 12) break;
  }
  FleetMonitor monitor(model_, {}, nullptr);
  for (size_t v = 0; v < picks.size(); ++v) {
    ASSERT_TRUE(monitor
                    .StartTrip(static_cast<int64_t>(v), picks[v]->traj.sd(),
                               picks[v]->traj.start_time)
                    .ok());
  }
  // Thread t feeds the points of vehicles with v % kThreads == t, in round-
  // robin batches — concurrent FeedBatch calls with disjoint vehicles.
  constexpr size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (size_t th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      std::vector<FleetPoint> batch;
      size_t longest = 0;
      for (size_t v = th; v < picks.size(); v += kThreads) {
        longest = std::max(longest, picks[v]->traj.edges.size());
      }
      for (size_t i = 0; i < longest; ++i) {
        batch.clear();
        for (size_t v = th; v < picks.size(); v += kThreads) {
          const auto& edges = picks[v]->traj.edges;
          if (i < edges.size()) {
            batch.push_back({static_cast<int64_t>(v), edges[i],
                             picks[v]->traj.start_time});
          }
        }
        if (!batch.empty()) (void)monitor.FeedBatch(batch);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (size_t v = 0; v < picks.size(); ++v) {
    auto labels = monitor.EndTrip(static_cast<int64_t>(v));
    ASSERT_TRUE(labels.ok());
    EXPECT_EQ(*labels, model_->Detect(picks[v]->traj)) << "vehicle " << v;
  }
}

TEST_F(FleetTest, ConcurrentIngestFromManyThreads) {
  CollectingSink sink;
  FleetMonitor monitor(model_, {}, &sink);

  constexpr int kThreads = 8;
  constexpr int kTripsPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int k = 0; k < kTripsPerThread; ++k) {
        const auto& lt =
            (*dataset_)[(static_cast<size_t>(th) * 31 + static_cast<size_t>(k)) %
                        dataset_->size()];
        const auto& t = lt.traj;
        if (t.edges.size() < 2) continue;
        const int64_t vid = th * 1000 + k;
        if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) {
          ++failures;
          continue;
        }
        for (traj::EdgeId e : t.edges) {
          if (!monitor.Feed(vid, e, t.start_time).ok()) ++failures;
        }
        auto labels = monitor.EndTrip(vid);
        if (!labels.ok() || labels->size() != t.edges.size()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(monitor.ActiveTrips(), 0u);
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.trips_started, stats.trips_finished);
  EXPECT_GT(stats.points_processed, 0);
}

TEST_F(FleetTest, StressConservationUnderConcurrentEviction) {
  // Ingest, trip lifecycle, and eviction all running concurrently. Designed
  // to run under ThreadSanitizer (the CI tsan job includes this suite).
  // Invariants checked at the end:
  //   * conservation: started == finished + evicted + active (== 0 here),
  //   * no lost or phantom alerts: monitor counter == sink delivery count,
  //   * every lifecycle event reached the sink exactly once.
  CollectingSink sink;
  FleetConfig cfg;
  cfg.trip_timeout_s = 50.0;
  cfg.num_shards = 4;  // force cross-thread shard sharing
  FleetMonitor monitor(model_, cfg, &sink);

  constexpr int kThreads = 8;
  constexpr int kTripsPerThread = 10;
  std::atomic<int64_t> ok_points{0};
  std::atomic<int> started{0};
  std::atomic<bool> stop_evictor{false};

  // One thread aggressively evicts "stale" trips while others feed: any
  // trip pausing between points can be yanked mid-flight.
  std::thread evictor([&] {
    while (!stop_evictor.load()) {
      monitor.EvictStale(1e12);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int k = 0; k < kTripsPerThread; ++k) {
        const auto& lt =
            (*dataset_)[(static_cast<size_t>(th) * 13 +
                         static_cast<size_t>(k) * 7) %
                        dataset_->size()];
        const auto& t = lt.traj;
        if (t.edges.size() < 2) continue;
        const int64_t vid = th * 1000 + k;
        if (!monitor.StartTrip(vid, t.sd(), t.start_time).ok()) continue;
        started.fetch_add(1);
        for (traj::EdgeId e : t.edges) {
          if (monitor.Feed(vid, e, t.start_time).ok()) {
            ok_points.fetch_add(1);
          } else {
            break;  // evicted mid-trip; the monitor already notified
          }
        }
        (void)monitor.EndTrip(vid);  // NotFound when the evictor won
      }
    });
  }
  for (auto& th : threads) th.join();
  stop_evictor.store(true);
  evictor.join();
  monitor.EvictStale(1e12);  // clear any remaining active trips

  EXPECT_EQ(monitor.ActiveTrips(), 0u);
  const FleetStats stats = monitor.Stats();
  EXPECT_EQ(stats.trips_started, started.load());
  EXPECT_EQ(stats.trips_started, stats.trips_finished + stats.trips_evicted);
  EXPECT_EQ(stats.points_processed, ok_points.load());
  EXPECT_EQ(stats.alerts_emitted, static_cast<int64_t>(sink.NumAlerts()));
  EXPECT_EQ(stats.trips_finished, static_cast<int64_t>(sink.NumFinished()));
  EXPECT_EQ(stats.trips_evicted, static_cast<int64_t>(sink.NumEvicted()));
}

TEST_F(FleetTest, ConcurrentResultsMatchSerialDetection) {
  // Interleaved multi-vehicle streaming must not cross-contaminate sessions:
  // run the same 16 trajectories concurrently and compare every label
  // sequence against the serial batch result.
  std::vector<const traj::LabeledTrajectory*> picks;
  for (const auto& lt : dataset_->trajs()) {
    if (lt.traj.edges.size() >= 2) picks.push_back(&lt);
    if (picks.size() == 16) break;
  }
  FleetMonitor monitor(model_, {}, nullptr);
  std::vector<std::vector<uint8_t>> streamed(picks.size());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < picks.size(); ++i) {
    threads.emplace_back([&, i] {
      streamed[i] = RunTrip(&monitor, static_cast<int64_t>(i),
                            picks[i]->traj);
    });
  }
  for (auto& th : threads) th.join();
  for (size_t i = 0; i < picks.size(); ++i) {
    EXPECT_EQ(streamed[i], model_->Detect(picks[i]->traj)) << "vehicle " << i;
  }
}

}  // namespace
}  // namespace rl4oasd::serve
