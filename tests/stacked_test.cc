// Tests for the stacked recurrent network: layer plumbing, streaming vs
// sequence consistency, finite-difference gradients through the stack, and
// RSRNet integration with num_layers > 1.
#include <cmath>

#include <gtest/gtest.h>

#include "core/rsrnet.h"
#include "nn/stacked.h"

namespace rl4oasd::nn {
namespace {

class StackedRnnTest
    : public ::testing::TestWithParam<std::tuple<RnnKind, size_t>> {};

TEST_P(StackedRnnTest, StreamingMatchesSequenceForward) {
  auto [kind, layers] = GetParam();
  Rng rng(7);
  const size_t I = 3, H = 5, T = 6;
  StackedRnn net(kind, "stack", I, H, layers, &rng);
  EXPECT_EQ(net.num_layers(), layers);
  EXPECT_EQ(net.state_size(), layers * H);

  std::vector<Vec> xs(T, Vec(I));
  for (auto& x : xs) {
    for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  }
  std::vector<const float*> inputs;
  for (auto& x : xs) inputs.push_back(x.data());
  auto cache = net.Forward(inputs);
  ASSERT_EQ(cache->size(), T);

  RnnState state(net.state_size());
  for (size_t t = 0; t < T; ++t) {
    net.StepForward(xs[t].data(), &state);
    // The top layer's slice is last.
    const float* top = state.h.data() + (layers - 1) * H;
    for (size_t i = 0; i < H; ++i) {
      EXPECT_NEAR(top[i], cache->h(t)[i], 1e-5f) << "t=" << t;
    }
  }
}

TEST_P(StackedRnnTest, GradientsMatchFiniteDifferences) {
  auto [kind, layers] = GetParam();
  Rng rng(11);
  const size_t I = 2, H = 3, T = 4;
  StackedRnn net(kind, "g", I, H, layers, &rng);
  ParameterRegistry reg;
  net.RegisterParams(&reg);

  std::vector<Vec> xs(T, Vec(I));
  for (auto& x : xs) {
    for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  }
  std::vector<Vec> d_h(T, Vec(H));
  for (auto& d : d_h) {
    for (auto& v : d) v = static_cast<float>(rng.Uniform(-1, 1));
  }
  auto loss = [&]() {
    std::vector<const float*> inputs;
    for (auto& x : xs) inputs.push_back(x.data());
    auto cache = net.Forward(inputs);
    float total = 0.0f;
    for (size_t t = 0; t < T; ++t) {
      total += Dot(cache->h(t).data(), d_h[t].data(), H);
    }
    return total;
  };

  reg.ZeroGrad();
  std::vector<const float*> inputs;
  for (auto& x : xs) inputs.push_back(x.data());
  auto cache = net.Forward(inputs);
  std::vector<Vec> d_x;
  net.Backward(*cache, d_h, &d_x);
  ASSERT_EQ(d_x.size(), T);

  constexpr float kEps = 1e-2f;
  constexpr float kTol = 3e-2f;
  // Spot-check parameters from every layer (first tensor of each core).
  for (Parameter* p : reg.params()) {
    for (size_t k = 0; k < p->value.size(); k += p->value.size() / 4 + 1) {
      float* w = p->value.data();
      const float orig = w[k];
      w[k] = orig + kEps;
      const float up = loss();
      w[k] = orig - kEps;
      const float down = loss();
      w[k] = orig;
      const float fd = (up - down) / (2 * kEps);
      EXPECT_NEAR(p->grad.data()[k], fd, kTol * std::max(1.0f, std::abs(fd)))
          << p->name << "[" << k << "]";
    }
  }
  // Input gradient through the whole stack.
  for (size_t k = 0; k < I; ++k) {
    const float orig = xs[1][k];
    xs[1][k] = orig + kEps;
    const float up = loss();
    xs[1][k] = orig - kEps;
    const float down = loss();
    xs[1][k] = orig;
    const float fd = (up - down) / (2 * kEps);
    EXPECT_NEAR(d_x[1][k], fd, kTol * std::max(1.0f, std::abs(fd)));
  }
}

TEST_P(StackedRnnTest, ParameterNamesEncodeLayerIndex) {
  auto [kind, layers] = GetParam();
  Rng rng(1);
  StackedRnn net(kind, "rsr", 2, 3, layers, &rng);
  ParameterRegistry reg;
  net.RegisterParams(&reg);
  // 3 tensors per core, names prefixed rsr.l<k>.
  ASSERT_EQ(reg.params().size(), 3 * layers);
  for (size_t l = 0; l < layers; ++l) {
    EXPECT_EQ(reg.params()[3 * l]->name.find("rsr.l" + std::to_string(l)),
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StackedRnnTest,
    ::testing::Combine(::testing::Values(RnnKind::kLstm, RnnKind::kGru),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{3})),
    [](const auto& info) {
      return std::string(RnnKindName(std::get<0>(info.param))) + "_x" +
             std::to_string(std::get<1>(info.param));
    });

TEST(StackedRsrNetTest, TwoLayerCoreTrainsAndStreams) {
  core::RsrNetConfig cfg;
  cfg.num_edges = 40;
  cfg.embed_dim = 8;
  cfg.nrf_dim = 4;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  core::RsrNet net(cfg);

  std::vector<traj::EdgeId> edges = {1, 5, 9, 13, 17, 21};
  std::vector<uint8_t> nrf = {0, 0, 1, 1, 1, 0};
  std::vector<uint8_t> labels = {0, 0, 1, 1, 1, 0};

  const double before = net.Loss(edges, nrf, labels);
  for (int i = 0; i < 80; ++i) net.TrainStep(edges, nrf, labels);
  EXPECT_LT(net.Loss(edges, nrf, labels), before);

  // Streaming parity with the sequence forward (the top-layer slice).
  const core::RsrForward fwd = net.Forward(edges, nrf);
  core::RsrStream stream;
  for (size_t i = 0; i < edges.size(); ++i) {
    std::array<float, 2> probs;
    const nn::Vec z = net.StepForward(edges[i], nrf[i], &stream, &probs);
    ASSERT_EQ(z.size(), fwd.z[i].size());
    for (size_t k = 0; k < z.size(); ++k) {
      EXPECT_NEAR(z[k], fwd.z[i][k], 1e-5f) << "i=" << i << " k=" << k;
    }
    EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-5f);
  }
}

}  // namespace
}  // namespace rl4oasd::nn
