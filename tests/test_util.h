// Shared fixtures for the test suite: a tiny grid city, a small generated
// dataset, the road network of the paper's Figure 1 worked example, and
// helpers for corrupting CRC32-protected files in place.
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/binary.h"
#include "roadnet/grid_city.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"
#include "traj/generator.h"

namespace rl4oasd::testing {

inline std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

inline void WriteFileBytes(const std::string& path,
                           const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
}

/// Overwrites `count` payload bytes at `offset` (coordinates into the
/// CRC-stripped payload) and re-appends a *valid* CRC32 footer, so the
/// parser itself — not the integrity check — must reject the lie. Returns
/// false when the file is too small to hold the patch.
inline bool PatchPayloadWithValidCrc(const std::string& path, size_t offset,
                                     const void* bytes, size_t count) {
  std::string content = ReadFileBytes(path);
  if (content.size() < 4 + offset + count) return false;
  content.resize(content.size() - 4);  // strip the stale CRC
  std::memcpy(content.data() + offset, bytes, count);
  const uint32_t crc = Crc32(content.data(), content.size());
  for (int i = 0; i < 4; ++i) {
    content.push_back(static_cast<char>((crc >> (8 * i)) & 0xFFu));
  }
  WriteFileBytes(path, content);
  return true;
}

/// A small synthetic city for fast tests (~380 directed edges).
inline roadnet::RoadNetwork SmallGrid(uint64_t seed = 7) {
  roadnet::GridCityConfig cfg;
  cfg.rows = 10;
  cfg.cols = 10;
  cfg.arterial_every = 3;
  cfg.removal_prob = 0.0;  // keep the grid fully connected for tests
  cfg.seed = seed;
  return roadnet::BuildGridCity(cfg);
}

/// A small generated dataset over `net` (a few SD pairs).
inline traj::Dataset SmallDataset(const roadnet::RoadNetwork& net,
                                  int pairs = 6, double anomaly_ratio = 0.1,
                                  uint64_t seed = 99) {
  traj::GeneratorConfig cfg;
  cfg.num_sd_pairs = pairs;
  cfg.min_trajs_per_pair = 50;
  cfg.max_trajs_per_pair = 120;
  cfg.anomaly_ratio = anomaly_ratio;
  cfg.min_pair_dist_m = 800;
  cfg.max_pair_dist_m = 2500;
  cfg.min_route_edges = 8;
  cfg.seed = seed;
  traj::TrajectoryGenerator gen(&net, cfg);
  return gen.Generate();
}

/// The Figure 1 worked example of the paper: 10 trajectories between the
/// same SD pair — 5 along route T1, 4 along T2, 1 along the anomalous T3.
/// Edge ids are exposed by the paper's names (e1..e15).
struct Figure1Example {
  roadnet::RoadNetwork net;
  std::map<std::string, roadnet::EdgeId> e;  // "e1" .. "e15"
  std::vector<traj::EdgeId> t1, t2, t3;
  traj::Dataset dataset;
};

inline Figure1Example MakeFigure1Example() {
  Figure1Example ex;
  auto& net = ex.net;
  // Vertices along the three routes.
  //   T1: v0 -e1-> v1 -e3-> v2 -e5-> v3 -e6-> v4 -e10-> v5
  //   T2: v0 -e1-> v1 -e2-> v6 -e4-> v7 -e7-> v4 -e10-> v5
  //   T3: ... v7 -e11-> v8 -e12-> v9 -e13-> v10 -e14-> v11 -e15-> v4 -e10->
  std::vector<roadnet::VertexId> v;
  for (int i = 0; i < 12; ++i) {
    v.push_back(net.AddVertex({30.0 + 0.001 * i, 104.0 + 0.0005 * i}));
  }
  auto add = [&](const std::string& name, int a, int b) {
    ex.e[name] = net.AddEdge(v[a], v[b]);
  };
  add("e1", 0, 1);
  add("e2", 1, 6);
  add("e3", 1, 2);
  add("e4", 6, 7);
  add("e5", 2, 3);
  add("e6", 3, 4);
  add("e7", 7, 4);
  add("e10", 4, 5);
  add("e11", 7, 8);
  add("e12", 8, 9);
  add("e13", 9, 10);
  add("e14", 10, 11);
  add("e15", 11, 4);
  net.Build();

  ex.t1 = {ex.e["e1"], ex.e["e3"], ex.e["e5"], ex.e["e6"], ex.e["e10"]};
  ex.t2 = {ex.e["e1"], ex.e["e2"], ex.e["e4"], ex.e["e7"], ex.e["e10"]};
  ex.t3 = {ex.e["e1"], ex.e["e2"], ex.e["e4"], ex.e["e11"], ex.e["e12"],
           ex.e["e13"], ex.e["e14"], ex.e["e15"], ex.e["e10"]};

  int64_t id = 0;
  auto add_traj = [&](const std::vector<traj::EdgeId>& route, int count,
                      std::vector<uint8_t> labels) {
    for (int i = 0; i < count; ++i) {
      traj::LabeledTrajectory lt;
      lt.traj.id = id++;
      lt.traj.start_time = 9 * 3600.0 + i * 60.0;  // all in the 9:00 slot
      lt.traj.edges = route;
      lt.labels = std::move(labels);
      labels = lt.labels;
      ex.dataset.Add(std::move(lt));
    }
  };
  add_traj(ex.t1, 5, std::vector<uint8_t>(ex.t1.size(), 0));
  add_traj(ex.t2, 4, std::vector<uint8_t>(ex.t2.size(), 0));
  add_traj(ex.t3, 1, {0, 0, 0, 1, 1, 1, 1, 1, 0});
  return ex;
}

}  // namespace rl4oasd::testing
