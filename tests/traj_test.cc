// Trajectory substrate tests: dataset container, generator invariants
// (property-style over seeds), and the GPS sampler.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unordered_set>

#include "test_util.h"
#include "traj/dataset.h"
#include "traj/generator.h"
#include "traj/gps_sampler.h"

namespace rl4oasd::traj {
namespace {

using ::rl4oasd::testing::SmallDataset;
using ::rl4oasd::testing::SmallGrid;

TEST(DatasetTest, GroupsBySdPair) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 4);
  EXPECT_GT(ds.size(), 0u);
  size_t total = 0;
  for (const auto& [sd, idxs] : ds.Groups()) {
    for (size_t i : idxs) {
      EXPECT_EQ(ds[i].traj.sd(), sd);
    }
    total += idxs.size();
  }
  EXPECT_EQ(total, ds.size());
}

TEST(DatasetTest, SplitPartitions) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 4);
  Rng rng(1);
  const auto [train, test] = ds.Split(ds.size() / 2, &rng);
  EXPECT_EQ(train.size(), ds.size() / 2);
  EXPECT_EQ(train.size() + test.size(), ds.size());
  // Ids are disjoint.
  std::unordered_set<int64_t> train_ids;
  for (const auto& t : train.trajs()) train_ids.insert(t.traj.id);
  for (const auto& t : test.trajs()) {
    EXPECT_FALSE(train_ids.contains(t.traj.id));
  }
}

TEST(DatasetTest, FilterSparsePairs) {
  const auto net = SmallGrid();
  auto ds = SmallDataset(net, 5);
  const size_t before_pairs = ds.NumSdPairs();
  ds.FilterSparsePairs(1000);  // nothing has 1000 trajectories
  EXPECT_EQ(ds.size(), 0u);
  auto ds2 = SmallDataset(net, 5);
  ds2.FilterSparsePairs(1);
  EXPECT_EQ(ds2.NumSdPairs(), before_pairs);
}

TEST(DatasetTest, DropFractionKeepsPairs) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 5);
  Rng rng(3);
  const auto dropped = ds.DropFraction(0.8, &rng);
  EXPECT_LT(dropped.size(), ds.size());
  // Every pair survives (cold-start experiment requirement).
  EXPECT_EQ(dropped.NumSdPairs(), ds.NumSdPairs());
  for (const auto& [sd, idxs] : dropped.Groups()) {
    const auto& orig = ds.Group(sd);
    EXPECT_GE(idxs.size(), 1u);
    EXPECT_NEAR(static_cast<double>(idxs.size()),
                0.2 * static_cast<double>(orig.size()),
                2.0);
  }
}

TEST(DatasetTest, CsvRoundTrip) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rl4oasd_ds_test.csv")
          .string();
  ASSERT_TRUE(ds.SaveCsv(path).ok());
  auto loaded = Dataset::LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ((*loaded)[i].traj.id, ds[i].traj.id);
    EXPECT_EQ((*loaded)[i].traj.edges, ds[i].traj.edges);
    EXPECT_EQ((*loaded)[i].labels, ds[i].labels);
    EXPECT_NEAR((*loaded)[i].traj.start_time, ds[i].traj.start_time, 0.1);
  }
  std::remove(path.c_str());
}

// ---- Generator properties, swept over seeds (parameterized).

class GeneratorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorPropertyTest, TrajectoriesAreConnectedPaths) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 4, 0.2, GetParam());
  for (const auto& lt : ds.trajs()) {
    EXPECT_TRUE(net.IsConnectedPath(lt.traj.edges));
    EXPECT_EQ(lt.labels.size(), lt.traj.edges.size());
  }
}

TEST_P(GeneratorPropertyTest, EndpointsNeverAnomalous) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 4, 0.3, GetParam());
  for (const auto& lt : ds.trajs()) {
    ASSERT_FALSE(lt.labels.empty());
    EXPECT_EQ(lt.labels.front(), 0);
    EXPECT_EQ(lt.labels.back(), 0);
  }
}

TEST_P(GeneratorPropertyTest, SdPairPreservedUnderDetour) {
  const auto net = SmallGrid();
  GeneratorConfig cfg;
  cfg.num_sd_pairs = 3;
  cfg.min_trajs_per_pair = 20;
  cfg.max_trajs_per_pair = 30;
  cfg.anomaly_ratio = 1.0;  // every trajectory gets a detour if possible
  cfg.min_pair_dist_m = 800;
  cfg.max_pair_dist_m = 2500;
  cfg.seed = GetParam();
  TrajectoryGenerator gen(&net, cfg);
  const auto ds = gen.Generate();
  for (const auto& info : gen.pairs()) {
    for (size_t i : ds.Group(info.sd)) {
      EXPECT_EQ(ds[i].traj.edges.front(), info.sd.source);
      EXPECT_EQ(ds[i].traj.edges.back(), info.sd.dest);
    }
  }
}

TEST_P(GeneratorPropertyTest, AnomalousEdgesAreMostlyOffNormalRoutes) {
  const auto net = SmallGrid();
  GeneratorConfig cfg;
  cfg.num_sd_pairs = 3;
  cfg.min_trajs_per_pair = 20;
  cfg.max_trajs_per_pair = 30;
  cfg.anomaly_ratio = 0.5;
  cfg.min_pair_dist_m = 800;
  cfg.max_pair_dist_m = 2500;
  cfg.seed = GetParam();
  TrajectoryGenerator gen(&net, cfg);
  const auto ds = gen.Generate();
  // Ground truth marks the detour interior contiguously (like a human
  // labeler); each interior must still deviate substantially from the
  // pair's normal routes.
  for (const auto& info : gen.pairs()) {
    std::unordered_set<EdgeId> normal_edges;
    for (const auto& r : info.normal_routes) {
      normal_edges.insert(r.begin(), r.end());
    }
    for (size_t i : ds.Group(info.sd)) {
      const auto& lt = ds[i];
      int anomalous = 0, off_normal = 0;
      for (size_t k = 0; k < lt.labels.size(); ++k) {
        if (lt.labels[k]) {
          ++anomalous;
          off_normal += normal_edges.contains(lt.traj.edges[k]) ? 0 : 1;
        }
      }
      if (anomalous > 0) {
        EXPECT_GE(off_normal, 2)
            << "detour does not deviate from the normal routes";
      }
    }
  }
}

TEST_P(GeneratorPropertyTest, AnomalyRatioApproximatelyRespected) {
  const auto net = SmallGrid();
  GeneratorConfig cfg;
  cfg.num_sd_pairs = 6;
  cfg.min_trajs_per_pair = 50;
  cfg.max_trajs_per_pair = 80;
  cfg.anomaly_ratio = 0.2;
  cfg.min_pair_dist_m = 800;
  cfg.max_pair_dist_m = 2500;
  cfg.seed = GetParam();
  TrajectoryGenerator gen(&net, cfg);
  const auto ds = gen.Generate();
  const double ratio =
      static_cast<double>(ds.NumAnomalous()) / static_cast<double>(ds.size());
  EXPECT_GT(ratio, 0.08);
  EXPECT_LT(ratio, 0.35);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 42));

TEST(GeneratorTest, PopularityRotatesUnderDrift) {
  const auto net = SmallGrid();
  GeneratorConfig cfg;
  cfg.num_sd_pairs = 2;
  cfg.drift_parts = 4;
  cfg.min_pair_dist_m = 800;
  cfg.max_pair_dist_m = 2500;
  TrajectoryGenerator gen(&net, cfg);
  gen.Generate();
  ASSERT_FALSE(gen.pairs().empty());
  const auto& info = gen.pairs()[0];
  if (info.normal_routes.size() < 2) GTEST_SKIP();
  const auto w0 = gen.EffectivePopularity(info, 1 * 3600.0);   // part 0
  const auto w1 = gen.EffectivePopularity(info, 7 * 3600.0);   // part 1
  EXPECT_NE(w0, w1);
  // Part 0 equals the base popularity.
  EXPECT_EQ(w0, info.base_popularity);
}

TEST(GeneratorTest, NoDriftMeansStablePopularity) {
  const auto net = SmallGrid();
  GeneratorConfig cfg;
  cfg.num_sd_pairs = 2;
  cfg.min_pair_dist_m = 800;
  cfg.max_pair_dist_m = 2500;
  TrajectoryGenerator gen(&net, cfg);
  gen.Generate();
  const auto& info = gen.pairs()[0];
  EXPECT_EQ(gen.EffectivePopularity(info, 0.0),
            gen.EffectivePopularity(info, 80000.0));
}

TEST(GpsSamplerTest, ProducesPlausibleTrace) {
  const auto net = SmallGrid();
  const auto ds = SmallDataset(net, 3);
  GpsSampler sampler(&net, GpsSamplerConfig{});
  const auto& t = ds[0].traj;
  const auto raw = sampler.Sample(t);
  ASSERT_GT(raw.points.size(), 2u);
  // Timestamps strictly increase and intervals are in [2, 4] s.
  for (size_t i = 1; i < raw.points.size(); ++i) {
    const double dt = raw.points[i].t - raw.points[i - 1].t;
    EXPECT_GE(dt, 2.0 - 1e-9);
    EXPECT_LE(dt, 4.0 + 1e-9);
  }
  // Every fix lies near some edge of the trajectory (within noise bounds).
  for (const auto& p : raw.points) {
    double best = 1e18;
    for (EdgeId e : t.edges) {
      const auto& edge = net.edge(e);
      best = std::min(best, roadnet::PointToSegmentMeters(
                                p.pos, net.vertex(edge.from).pos,
                                net.vertex(edge.to).pos));
    }
    EXPECT_LT(best, 100.0);  // 10 m sigma, so 100 m is a >9-sigma bound
  }
}

TEST(GpsSamplerTest, EmptyTrajectoryGivesEmptyTrace) {
  const auto net = SmallGrid();
  GpsSampler sampler(&net, GpsSamplerConfig{});
  MapMatchedTrajectory t;
  EXPECT_TRUE(sampler.Sample(t).points.empty());
}

}  // namespace
}  // namespace rl4oasd::traj
