# Chaos ingest smoke (ctest target `chaos_ingest_smoke`): generate a tiny
# fleet workload, train a tiny model, then replay it through oasd_simulate
# with a seeded --chaos spec and require three robustness properties end to
# end, on the real binaries:
#
#   1. Determinism — two identical seeded chaos runs produce the identical
#      per-vehicle alert multiset and identical guard/fleet metrics (the
#      injector is seeded per worker and trips are strided deterministically
#      across threads).
#   2. Mode equivalence — the async staged-ingest run (--async) of the same
#      seeded chaos stream produces the same alert multiset as the batched
#      synchronous run (the guard runs below both ingest paths).
#   3. Conservation — the metrics dump satisfies
#      trips_started == trips_finished + trips_evicted + trips_active
#      and sheds nothing under the default kBlock policy.
#
# On failure the work dir — dataset, model, and all replay logs — is left
# behind for triage; the CI Release job uploads it as an artifact. On
# success it is removed.
#
# Expected -D variables: OASD_GEN OASD_TRAIN OASD_SIMULATE WORK_DIR

foreach(var OASD_GEN OASD_TRAIN OASD_SIMULATE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "chaos_smoke.cmake: missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step log_name)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_FILE ${WORK_DIR}/${log_name}
    ERROR_FILE ${WORK_DIR}/${log_name})
  if(NOT rc EQUAL 0)
    file(READ ${WORK_DIR}/${log_name} log)
    message(FATAL_ERROR "step '${log_name}' failed (${rc}):\n${log}")
  endif()
endfunction()

# Tiny but alert-rich workload: high anomaly ratio so the alert-equivalence
# checks are not vacuous, fixed seeds so everything is deterministic.
run_step(gen.log ${OASD_GEN} --out-dir ${WORK_DIR}
  --grid-rows 10 --grid-cols 10 --pairs 6 --min-trajs 30 --max-trajs 60
  --train-size 400 --min-pair-dist 800 --max-pair-dist 2500
  --anomaly-ratio 0.3)
run_step(train.log ${OASD_TRAIN} --data-dir ${WORK_DIR}
  --model ${WORK_DIR}/model.rlmb --hidden-dim 16 --embed-dim 16
  --pretrain-samples 60 --joint-samples 120)

# A mixed spec that exercises every anomaly class plus the quarantine path
# (--chaos arms the guard in repair mode with a malformed budget of 8).
set(spec "drop=0.03,dup=0.04,reorder=0.03,skew=0.02,teleport=0.03,seed=42")

# Two identical seeded runs (determinism), then the async-ingest twin of the
# first (mode equivalence).
run_step(chaos_a.log ${OASD_SIMULATE} --data-dir ${WORK_DIR}
  --model ${WORK_DIR}/model.rlmb --threads 2 --batch 4 --print-alerts
  --chaos ${spec})
run_step(chaos_b.log ${OASD_SIMULATE} --data-dir ${WORK_DIR}
  --model ${WORK_DIR}/model.rlmb --threads 2 --batch 4 --print-alerts
  --chaos ${spec})
run_step(chaos_async.log ${OASD_SIMULATE} --data-dir ${WORK_DIR}
  --model ${WORK_DIR}/model.rlmb --threads 2 --async --print-alerts
  --chaos ${spec})

# Collects lines matching `pattern` from a log, sorted (alert arrival order
# across worker threads is scheduling-dependent; the multiset is not).
function(matching_lines out log pattern)
  file(READ ${WORK_DIR}/${log} content)
  # An unbalanced "[" inside a CMake list element swallows the ";"
  # separators that follow it; alert ranges print as "[a,b)", so normalize
  # the bracket away before any list operation.
  string(REPLACE "[" "<" content "${content}")
  string(REPLACE "\n" ";" content "${content}")
  set(lines)
  foreach(line ${content})
    if(line MATCHES "${pattern}")
      list(APPEND lines "${line}")
    endif()
  endforeach()
  list(SORT lines)
  set(${out} "${lines}" PARENT_SCOPE)
endfunction()

matching_lines(alerts_a chaos_a.log "^ALERT ")
matching_lines(alerts_b chaos_b.log "^ALERT ")
matching_lines(alerts_async chaos_async.log "^ALERT ")

list(LENGTH alerts_a n_alerts)
if(n_alerts EQUAL 0)
  message(FATAL_ERROR
    "chaos smoke is vacuous: the perturbed replay produced no alerts "
    "(work dir kept at ${WORK_DIR})")
endif()
if(NOT "${alerts_a}" STREQUAL "${alerts_b}")
  message(FATAL_ERROR
    "seeded chaos replay is not deterministic: two identical runs disagree"
    "\n--- run A ---\n${alerts_a}\n--- run B ---\n${alerts_b}\n"
    "(work dir kept at ${WORK_DIR})")
endif()
if(NOT "${alerts_a}" STREQUAL "${alerts_async}")
  message(FATAL_ERROR
    "sync/async divergence under chaos: batched and staged ingest disagree"
    "\n--- batched ---\n${alerts_a}\n--- async ---\n${alerts_async}\n"
    "(work dir kept at ${WORK_DIR})")
endif()

# The guard and fleet counters in the metrics dump must also be identical
# across the two seeded runs (timing lines are excluded by construction:
# metrics lines are bare `name value` pairs).
matching_lines(metrics_a chaos_a.log "^(fleet|guard|model)_")
matching_lines(metrics_b chaos_b.log "^(fleet|guard|model)_")
if(NOT "${metrics_a}" STREQUAL "${metrics_b}")
  message(FATAL_ERROR
    "seeded chaos replay is not deterministic: metrics disagree"
    "\n--- run A ---\n${metrics_a}\n--- run B ---\n${metrics_b}\n"
    "(work dir kept at ${WORK_DIR})")
endif()

# Conservation and non-vacuity, parsed from run A's metrics dump.
function(metric out log name)
  file(READ ${WORK_DIR}/${log} content)
  if(NOT content MATCHES "${name} ([0-9]+)")
    message(FATAL_ERROR
      "metric '${name}' missing from ${log} (work dir kept at ${WORK_DIR})")
  endif()
  set(${out} ${CMAKE_MATCH_1} PARENT_SCOPE)
endfunction()

metric(started chaos_a.log fleet_trips_started)
metric(finished chaos_a.log fleet_trips_finished)
metric(evicted chaos_a.log fleet_trips_evicted)
metric(active chaos_a.log fleet_trips_active)
metric(shed chaos_a.log fleet_points_shed)
metric(quarantined chaos_a.log guard_trips_quarantined)
metric(dups chaos_a.log guard_duplicates)
metric(skews chaos_a.log guard_clock_skew)

math(EXPR accounted "${finished} + ${evicted} + ${active}")
if(NOT started EQUAL accounted)
  message(FATAL_ERROR
    "trip conservation broken: started ${started} != finished ${finished} "
    "+ evicted ${evicted} + active ${active} (work dir kept at ${WORK_DIR})")
endif()
if(NOT shed EQUAL 0)
  message(FATAL_ERROR
    "kBlock replay shed ${shed} points (work dir kept at ${WORK_DIR})")
endif()
if(dups EQUAL 0 OR skews EQUAL 0)
  message(FATAL_ERROR
    "chaos smoke is vacuous: guard saw ${dups} duplicates / ${skews} skews "
    "(work dir kept at ${WORK_DIR})")
endif()

message(STATUS "chaos smoke OK: ${n_alerts} alerts identical across seeded "
  "runs and ingest modes; ${started} trips conserved "
  "(${quarantined} quarantined)")
file(REMOVE_RECURSE ${WORK_DIR})
