#include "lint/lint_engine.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <utility>

namespace rl4oasd::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `token` occurs in `line` with identifier boundaries on both
/// sides (a token ending in a non-identifier char, e.g. "rand(", only needs
/// the leading boundary).
bool HasToken(std::string_view line, std::string_view token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]) ||
                          !IsIdentChar(token.back());
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Whitespace-insensitive `#include <header>` test.
bool HasInclude(std::string_view line, std::string_view header) {
  std::string squeezed;
  squeezed.reserve(line.size());
  for (char c : line) {
    if (!std::isspace(static_cast<unsigned char>(c))) squeezed.push_back(c);
  }
  std::string needle = "#include<";
  needle.append(header);
  needle.push_back('>');
  return squeezed.find(needle) != std::string::npos;
}

struct TokenRule {
  const char* name;
  const char* message;
  std::vector<std::string_view> tokens;
  std::vector<std::string_view> includes;
};

const std::vector<TokenRule>& TokenRules() {
  static const std::vector<TokenRule> rules = {
      {"raw-mutex",
       "raw standard-library locking; use common::Mutex / common::MutexLock "
       "(capability-annotated, rank-checked) from common/mutex.h",
       {"std::mutex", "std::timed_mutex", "std::recursive_mutex",
        "std::recursive_timed_mutex", "std::shared_mutex",
        "std::shared_timed_mutex", "std::lock_guard", "std::unique_lock",
        "std::scoped_lock", "std::shared_lock", "std::condition_variable",
        "std::condition_variable_any"},
       {"mutex", "shared_mutex", "condition_variable"}},
      {"clock",
       "wall-clock read in src/; control flow must be points-denominated "
       "(timing for reporting goes through common/stopwatch.h)",
       {"std::chrono", "sleep_for", "sleep_until", "gettimeofday",
        "clock_gettime", "usleep", "nanosleep"},
       {"chrono"}},
      {"randomness",
       "unseeded / platform-dependent randomness; draw from the "
       "deterministic common/rng.h Rng instead",
       {"std::mt19937", "std::mt19937_64", "std::random_device",
        "std::default_random_engine", "std::minstd_rand", "std::minstd_rand0",
        "srand(", "rand("},
       {"random"}},
      {"iostream",
       "global stream I/O in src/; use common/logging.h (serialized sink) "
       "or a caller-supplied std::ostream",
       {"std::cout", "std::cerr", "std::cin", "std::clog"},
       {"iostream"}},
  };
  return rules;
}

/// The closed lock-rank table mirrored from common/mutex.h (namespace
/// lockrank). The runtime checker only sees orderings that actually execute;
/// this rule catches the static half: a `lockrank::kSomething` that nobody
/// added to the table is a typo or an undeclared hierarchy tier, either of
/// which silently lands at whatever value the compiler error turns into
/// once "fixed" locally. New tiers must be added to common/mutex.h and to
/// this table in the same change.
constexpr std::array<std::string_view, 9> kKnownRanks = {
    "kFleetIngest", "kFleetShard",   "kFleetTrip",
    "kFleetDelivery", "kFleetModel", "kDriftPending",
    "kDriftState",  "kDefault",      "kLogging",
};

bool IsKnownRank(std::string_view name) {
  return std::find(kKnownRanks.begin(), kKnownRanks.end(), name) !=
         kKnownRanks.end();
}

constexpr std::string_view kOptOutMacro = "RL4OASD_NO_THREAD_SAFETY_ANALYSIS";
constexpr std::string_view kOptOutRationale = "opt-out rationale";
/// How far above an analysis opt-out its rationale comment may sit.
constexpr int kRationaleWindow = 12;

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Parsed `oasd-lint:` markers: rules allowed per 1-based line, and for the
/// whole file.
struct Allowances {
  std::map<int, std::set<std::string>> by_line;
  std::set<std::string> by_file;

  bool Allows(const std::string& rule, int line) const {
    if (by_file.contains(rule)) return true;
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.contains(rule);
  }
};

void ParseMarker(std::string_view line, std::string_view keyword,
                 std::set<std::string>* out) {
  size_t pos = 0;
  while ((pos = line.find(keyword, pos)) != std::string_view::npos) {
    const size_t open = pos + keyword.size();
    const size_t close = line.find(')', open);
    if (close == std::string_view::npos) break;
    std::string_view inner = line.substr(open, close - open);
    size_t item_start = 0;
    while (item_start <= inner.size()) {
      size_t comma = inner.find(',', item_start);
      if (comma == std::string_view::npos) comma = inner.size();
      std::string_view item = inner.substr(item_start, comma - item_start);
      while (!item.empty() && std::isspace(static_cast<unsigned char>(
                                  item.front()))) {
        item.remove_prefix(1);
      }
      while (!item.empty() &&
             std::isspace(static_cast<unsigned char>(item.back()))) {
        item.remove_suffix(1);
      }
      if (!item.empty()) out->emplace(item);
      item_start = comma + 1;
    }
    pos = close;
  }
}

Allowances ParseAllowances(const std::vector<std::string>& lines) {
  Allowances a;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.find("oasd-lint:") == std::string::npos) continue;
    ParseMarker(line, "oasd-lint: allow(", &a.by_line[static_cast<int>(i + 1)]);
    ParseMarker(line, "oasd-lint: allow-file(", &a.by_file);
  }
  return a;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool IsHeader(std::string_view path) {
  return path.size() >= 2 && path.substr(path.size() - 2) == ".h";
}

}  // namespace

std::vector<std::string> AllRules() {
  std::vector<std::string> rules;
  for (const TokenRule& r : TokenRules()) rules.emplace_back(r.name);
  rules.emplace_back("pragma-once");
  rules.emplace_back("tsa-optout");
  rules.emplace_back("lock-rank");
  return rules;
}

std::vector<std::string> RulesFor(std::string_view path) {
  std::vector<std::string> rules;
  const auto add = [&rules](const char* r) { rules.emplace_back(r); };
  if (StartsWith(path, "src/")) {
    // src/common hosts the blessed wrappers themselves; pointing raw-mutex
    // at them would be circular. Everything else in src/ gets every rule.
    if (!StartsWith(path, "src/common/")) add("raw-mutex");
    add("clock");
    if (path != "src/common/rng.h" && path != "src/common/rng.cc") {
      add("randomness");
    }
    add("iostream");
    add("pragma-once");
    if (path != "src/common/thread_annotations.h") add("tsa-optout");
    add("lock-rank");
    return rules;
  }
  if (StartsWith(path, "tests/") || StartsWith(path, "tools/") ||
      StartsWith(path, "bench/") || StartsWith(path, "examples/")) {
    // Harnesses legitimately print, time, and (seeded) shuffle; but their
    // locks still take part in the rank hierarchy, so raw-mutex and
    // lock-rank hold.
    add("raw-mutex");
    add("pragma-once");
    add("tsa-optout");
    add("lock-rank");
    return rules;
  }
  return rules;
}

std::string StripCommentsAndStrings(std::string_view content) {
  std::string out(content);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == quote || c == '\n') {
          // Unterminated-at-newline closes the literal: keeps a stray quote
          // in a macro from swallowing the rest of the file.
          if (c == quote) out[i] = ' ';
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<Finding> LintFileWithRules(const FileSpec& file,
                                       const std::vector<std::string>& rules) {
  std::vector<Finding> findings;
  const std::vector<std::string> raw_lines = SplitLines(file.content);
  const std::vector<std::string> lines =
      SplitLines(StripCommentsAndStrings(file.content));
  const Allowances allow = ParseAllowances(raw_lines);
  const auto enabled = [&rules](std::string_view name) {
    return std::find(rules.begin(), rules.end(), name) != rules.end();
  };
  const auto report = [&](const char* rule, int line, std::string message) {
    if (!allow.Allows(rule, line)) {
      findings.push_back(Finding{file.path, line, rule, std::move(message)});
    }
  };

  for (const TokenRule& rule : TokenRules()) {
    if (!enabled(rule.name)) continue;
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      bool hit = std::any_of(
          rule.tokens.begin(), rule.tokens.end(),
          [&line](std::string_view t) { return HasToken(line, t); });
      if (!hit) {
        hit = std::any_of(
            rule.includes.begin(), rule.includes.end(),
            [&line](std::string_view h) { return HasInclude(line, h); });
      }
      if (hit) report(rule.name, static_cast<int>(i + 1), rule.message);
    }
  }

  if (enabled("pragma-once") && IsHeader(file.path)) {
    const bool has = std::any_of(
        lines.begin(), lines.end(), [](const std::string& line) {
          const size_t first = line.find_first_not_of(" \t");
          return first != std::string::npos &&
                 StartsWith(std::string_view(line).substr(first),
                            "#pragma once");
        });
    if (!has) {
      report("pragma-once", 1, "header is missing #pragma once");
    }
  }

  if (enabled("tsa-optout")) {
    for (size_t i = 0; i < lines.size(); ++i) {
      if (!HasToken(lines[i], kOptOutMacro)) continue;
      bool justified = false;
      const size_t lo =
          i > static_cast<size_t>(kRationaleWindow) ? i - kRationaleWindow : 0;
      for (size_t j = lo; j < i && !justified; ++j) {
        justified = raw_lines[j].find(kOptOutRationale) != std::string::npos;
      }
      if (!justified) {
        report("tsa-optout", static_cast<int>(i + 1),
               "thread-safety analysis opt-out without a preceding "
               "\"opt-out rationale\" comment explaining why the static "
               "checker cannot model this function");
      }
    }
  }

  if (enabled("lock-rank")) {
    constexpr std::string_view kNs = "lockrank::";
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      size_t pos = 0;
      while ((pos = line.find(kNs, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
        const size_t start = pos + kNs.size();
        size_t end = start;
        while (end < line.size() && IsIdentChar(line[end])) ++end;
        const std::string name = line.substr(start, end - start);
        if (left_ok && !name.empty() && !IsKnownRank(name)) {
          report("lock-rank", static_cast<int>(i + 1),
                 "unknown lock rank 'lockrank::" + name +
                     "' — the rank table is closed; declare new tiers in "
                     "common/mutex.h and add them to this linter's "
                     "kKnownRanks in the same change");
        }
        pos = end;
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::pair(a.line, std::string_view(a.rule)) <
                     std::pair(b.line, std::string_view(b.rule));
            });
  return findings;
}

std::vector<Finding> LintFile(const FileSpec& file) {
  return LintFileWithRules(file, RulesFor(file.path));
}

}  // namespace rl4oasd::lint
