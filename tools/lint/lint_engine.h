// The repo-invariant linter behind tools/oasd_lint (and the per-rule unit
// tests in tests/oasd_lint_test.cc). Each rule encodes a contract the
// codebase depends on but the compiler cannot see:
//
//   raw-mutex   — all locking outside src/common goes through common::Mutex
//                 (so every lock is capability-annotated and rank-checked;
//                 std::once_flag/call_once stay legal, <mutex> itself does
//                 not).
//   clock       — serving-side control flow is points-denominated, never
//                 wall-clock: no std::chrono / sleeps in src/ outside the
//                 blessed common/stopwatch.h reporting wrapper.
//   randomness  — all stochastic draws go through the seeded common/rng
//                 (std::mt19937, random_device, rand() break determinism
//                 and therefore snapshot/replay).
//   iostream    — src/ never writes to the global streams directly; output
//                 funnels through common/logging (one serialized sink) or
//                 caller-supplied streams.
//   pragma-once — every header opens with #pragma once (self-containment
//                 is checked separately by the CI header-compile pass).
//   tsa-optout  — every RL4OASD_NO_THREAD_SAFETY_ANALYSIS carries a written
//                 "opt-out rationale" comment within the preceding lines.
//   lock-rank   — every lockrank::k* identifier names a tier of the closed
//                 rank table in common/mutex.h (kFleetIngest .. kLogging);
//                 a new tier is declared there and mirrored in the linter's
//                 table in the same change, so an invented or misspelled
//                 rank cannot slip into the hierarchy unreviewed.
//
// Escape hatches, greppable by design:
//   // oasd-lint: allow(<rule>)       — suppress on this line
//   // oasd-lint: allow-file(<rule>)  — suppress for the whole file
//
// Rule applicability is per top-level directory (RulesFor): tests/, tools/,
// bench/, and examples/ relax clock/randomness/iostream (harnesses print
// and time things), src/common/ hosts the blessed wrappers the rules point
// everyone else at.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rl4oasd::lint {

/// One rule violation at a specific line (1-based).
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// A file to lint: `path` is repo-relative with '/' separators (rule
/// applicability keys on its leading directories), `content` is the raw
/// bytes.
struct FileSpec {
  std::string path;
  std::string content;
};

/// Every rule name the engine knows, in reporting order.
std::vector<std::string> AllRules();

/// The rules that apply to `path` under the per-directory policy above.
/// Files outside the linted trees (e.g. build/) get no rules.
std::vector<std::string> RulesFor(std::string_view path);

/// Replaces comments and string/char literals with spaces (newlines are
/// preserved, so line numbers survive). Tokens inside comments or strings
/// must never trip a rule; markers are extracted before stripping.
std::string StripCommentsAndStrings(std::string_view content);

/// Lints one file with an explicit rule set (unit-test entry point).
std::vector<Finding> LintFileWithRules(const FileSpec& file,
                                       const std::vector<std::string>& rules);

/// Lints one file under the per-directory policy: RulesFor(path) + markers.
std::vector<Finding> LintFile(const FileSpec& file);

}  // namespace rl4oasd::lint
