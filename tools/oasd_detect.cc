// oasd_detect: streams trajectories through a trained model bundle exactly
// as the online deployment would (one road segment at a time) and reports
// the detected anomalous subtrajectories.
//
//   oasd_detect --data-dir data --model data/model.rlmb --limit 20
//
// Output is one line per trajectory with an anomaly, listing the [begin,end)
// segment ranges; --all also prints clean trajectories. --out writes a CSV
// of per-edge predicted labels for downstream analysis.
#include <cstdio>
#include <string>

#include "common/csv.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/explainer.h"
#include "core/rl4oasd.h"
#include "io/model_io.h"
#include "tools/tool_util.h"

namespace rl4oasd {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("oasd_detect",
                "online anomalous-subtrajectory detection with a trained "
                "model bundle");
  flags.AddString("data-dir", "data", "directory with network.bin/test.bin");
  flags.AddString("network", "", "override path to the road network");
  flags.AddString("input", "", "override path to the trajectory dataset");
  flags.AddString("model", "model.rlmb", "trained model bundle");
  flags.AddInt("limit", 0, "max trajectories to process (0 = all)");
  flags.AddBool("all", false, "also print trajectories with no anomaly");
  flags.AddString("out", "", "optional CSV of predicted per-edge labels");
  flags.AddBool("explain", false,
                "print an evidence summary for each detected anomaly");
  tools::ParseFlagsOrExit(&flags, argc, argv);

  const std::string data_dir = flags.GetString("data-dir");
  const std::string net_path = flags.GetString("network").empty()
                                   ? data_dir + "/network.bin"
                                   : flags.GetString("network");
  const std::string input_path = flags.GetString("input").empty()
                                     ? data_dir + "/test.bin"
                                     : flags.GetString("input");

  const roadnet::RoadNetwork net = tools::LoadRoadNetworkOrExit(net_path);
  auto model = tools::ExitIfError(
      io::LoadModel(&net, flags.GetString("model")));
  const traj::Dataset input = tools::LoadDatasetOrExit(input_path);

  core::AnomalyExplainer explainer(&net, &model->preprocessor());

  size_t limit = input.size();
  if (flags.GetInt("limit") > 0) {
    limit = std::min(limit, static_cast<size_t>(flags.GetInt("limit")));
  }

  CsvTable out_table;
  out_table.header = {"id", "labels"};

  Stopwatch sw;
  int64_t total_points = 0;
  size_t num_flagged = 0;
  for (size_t i = 0; i < limit; ++i) {
    const traj::MapMatchedTrajectory& t = input[i].traj;
    if (t.edges.size() < 2) continue;
    // Stream the trajectory point by point, as the online setting requires.
    auto session = model->StartSession(t.sd(), t.start_time);
    for (traj::EdgeId e : t.edges) session.Feed(e);
    const std::vector<uint8_t> labels = session.Finish();
    total_points += static_cast<int64_t>(t.edges.size());

    const auto runs = traj::ExtractAnomalousRuns(labels);
    if (!runs.empty()) ++num_flagged;
    if (!runs.empty() || flags.GetBool("all")) {
      std::printf("traj %lld (len %zu): ", static_cast<long long>(t.id),
                  t.edges.size());
      if (runs.empty()) {
        std::printf("NORMAL\n");
      } else {
        for (const auto& r : runs) {
          std::printf("anomalous [%d,%d) ", r.begin, r.end);
        }
        std::printf("\n");
        if (flags.GetBool("explain")) {
          for (const auto& report : explainer.Explain(t, labels)) {
            std::printf("    %s\n", report.Summary().c_str());
          }
        }
      }
    }
    if (!flags.GetString("out").empty()) {
      std::string packed(labels.size(), '0');
      for (size_t k = 0; k < labels.size(); ++k) {
        packed[k] = labels[k] ? '1' : '0';
      }
      out_table.rows.push_back({std::to_string(t.id), std::move(packed)});
    }
  }
  const double elapsed = sw.ElapsedSeconds();
  std::printf(
      "processed %zu trajectories (%lld points) in %.3fs — %.1f us/point; "
      "%zu flagged anomalous\n",
      limit, static_cast<long long>(total_points), elapsed,
      total_points > 0 ? elapsed * 1e6 / static_cast<double>(total_points)
                       : 0.0,
      num_flagged);

  if (!flags.GetString("out").empty()) {
    tools::ExitIfError(WriteCsv(flags.GetString("out"), out_table));
    std::printf("wrote %s\n", flags.GetString("out").c_str());
  }
  return 0;
}

}  // namespace
}  // namespace rl4oasd

int main(int argc, char** argv) { return rl4oasd::Main(argc, argv); }
