// oasd_eval: evaluates a trained model bundle against a labeled dataset,
// printing the paper's Table III row structure (F1 / TF1 per length group
// G1..G4 plus overall).
//
//   oasd_eval --data-dir data --model data/model.rlmb
#include <cstdio>

#include "common/flags.h"
#include "core/rl4oasd.h"
#include "eval/metrics.h"
#include "io/model_io.h"
#include "tools/tool_util.h"

namespace rl4oasd {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("oasd_eval",
                "evaluate a model bundle on a labeled trajectory dataset");
  flags.AddString("data-dir", "data", "directory with network.bin/test.bin");
  flags.AddString("network", "", "override path to the road network");
  flags.AddString("test", "", "override path to the labeled test dataset");
  flags.AddString("model", "model.rlmb", "trained model bundle");
  flags.AddDouble("phi", 0.5, "TF1 Jaccard threshold (paper: 0.5)");
  flags.AddInt("limit", 0, "max trajectories to evaluate (0 = all)");
  tools::ParseFlagsOrExit(&flags, argc, argv);

  const std::string data_dir = flags.GetString("data-dir");
  const std::string net_path = flags.GetString("network").empty()
                                   ? data_dir + "/network.bin"
                                   : flags.GetString("network");
  const std::string test_path = flags.GetString("test").empty()
                                    ? data_dir + "/test.bin"
                                    : flags.GetString("test");

  const roadnet::RoadNetwork net = tools::LoadRoadNetworkOrExit(net_path);
  auto model = tools::ExitIfError(
      io::LoadModel(&net, flags.GetString("model")));
  traj::Dataset test = tools::LoadDatasetOrExit(test_path);
  if (flags.GetInt("limit") > 0 &&
      test.size() > static_cast<size_t>(flags.GetInt("limit"))) {
    std::vector<traj::LabeledTrajectory> subset(
        test.trajs().begin(),
        test.trajs().begin() + flags.GetInt("limit"));
    test = traj::Dataset(std::move(subset));
  }
  std::printf("evaluating %zu trajectories (%zu anomalous)\n", test.size(),
              test.NumAnomalous());

  const eval::GroupedScores scores = eval::EvaluateGrouped(
      test,
      [&](const traj::MapMatchedTrajectory& t) { return model->Detect(t); },
      flags.GetDouble("phi"));

  std::printf("%-8s %-14s %-14s %-14s %-14s %-14s\n", "", "G1", "G2", "G3",
              "G4", "Overall");
  std::printf("%s\n",
              eval::FormatGroupedRow("RL4OASD", scores).c_str());
  std::printf(
      "overall: P=%.3f R=%.3f F1=%.3f | TP=%.3f TR=%.3f TF1=%.3f "
      "(%lld ground-truth anomalies, %lld detected)\n",
      scores.overall.precision, scores.overall.recall, scores.overall.f1,
      scores.overall.tprecision, scores.overall.trecall, scores.overall.tf1,
      static_cast<long long>(scores.overall.num_gt_anomalies),
      static_cast<long long>(scores.overall.num_detected));
  return 0;
}

}  // namespace
}  // namespace rl4oasd

int main(int argc, char** argv) { return rl4oasd::Main(argc, argv); }
