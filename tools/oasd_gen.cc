// oasd_gen: generates a synthetic city road network and a labeled trajectory
// workload (the DiDi-substitute described in DESIGN.md), writing both to
// disk for the other tools.
//
//   oasd_gen --out-dir data --pairs 200 --anomaly-ratio 0.007
//
// Produces <out-dir>/network.bin, <out-dir>/train.bin, <out-dir>/test.bin
// (and CSV copies with --csv).
#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "common/rng.h"
#include "io/dataset_io.h"
#include "roadnet/grid_city.h"
#include "tools/tool_util.h"
#include "traj/generator.h"

namespace rl4oasd {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("oasd_gen",
                "generate a synthetic road network + trajectory workload");
  flags.AddString("out-dir", "data", "output directory (created if missing)");
  flags.AddInt("grid-rows", 36, "city grid rows (36x36 ~ 4,900 segments)");
  flags.AddInt("grid-cols", 36, "city grid columns");
  flags.AddInt("arterial-every", 5, "every k-th row/column is an arterial");
  flags.AddInt("pairs", 100, "number of SD pairs");
  flags.AddInt("min-trajs", 30, "minimum trajectories per SD pair");
  flags.AddInt("max-trajs", 120, "maximum trajectories per SD pair");
  flags.AddInt("routes-per-pair", 3, "distinct normal routes per SD pair");
  flags.AddDouble("anomaly-ratio", 0.05,
                  "fraction of trajectories containing a detour "
                  "(paper: 0.007 Chengdu, 0.015 Xi'an)");
  flags.AddDouble("min-pair-dist", 2500,
                  "minimum straight-line distance between S and D (meters)");
  flags.AddDouble("max-pair-dist", 7000,
                  "maximum straight-line distance between S and D (meters)");
  flags.AddInt("drift-parts", 0,
               "enable concept drift with this many day parts (0 = off)");
  flags.AddInt("train-size", 10000,
               "number of trajectories in the training split (paper: 10,000)");
  flags.AddBool("csv", false, "also write CSV copies of the outputs");
  flags.AddInt("seed", 123, "generator seed");
  tools::ParseFlagsOrExit(&flags, argc, argv);

  const std::string out_dir = flags.GetString("out-dir");
  std::filesystem::create_directories(out_dir);

  roadnet::GridCityConfig city;
  city.rows = static_cast<int>(flags.GetInt("grid-rows"));
  city.cols = static_cast<int>(flags.GetInt("grid-cols"));
  city.arterial_every = static_cast<int>(flags.GetInt("arterial-every"));
  city.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const roadnet::RoadNetwork net = roadnet::BuildGridCity(city);
  std::printf("network: %zu vertices, %zu segments\n", net.NumVertices(),
              net.NumEdges());

  traj::GeneratorConfig gen_cfg;
  gen_cfg.num_sd_pairs = static_cast<int>(flags.GetInt("pairs"));
  gen_cfg.min_trajs_per_pair = static_cast<int>(flags.GetInt("min-trajs"));
  gen_cfg.max_trajs_per_pair = static_cast<int>(flags.GetInt("max-trajs"));
  gen_cfg.routes_per_pair = static_cast<int>(flags.GetInt("routes-per-pair"));
  gen_cfg.anomaly_ratio = flags.GetDouble("anomaly-ratio");
  gen_cfg.min_pair_dist_m = flags.GetDouble("min-pair-dist");
  gen_cfg.max_pair_dist_m = flags.GetDouble("max-pair-dist");
  gen_cfg.drift_parts = static_cast<int>(flags.GetInt("drift-parts"));
  gen_cfg.seed = static_cast<uint64_t>(flags.GetInt("seed")) + 1;
  traj::TrajectoryGenerator gen(&net, gen_cfg);
  traj::Dataset all = gen.Generate();
  std::printf("workload: %zu trajectories, %zu SD pairs, %zu anomalous\n",
              all.size(), all.NumSdPairs(), all.NumAnomalous());

  Rng rng(gen_cfg.seed + 2);
  const size_t train_size =
      std::min<size_t>(static_cast<size_t>(flags.GetInt("train-size")),
                       all.size() / 2);
  auto [train, test] = all.Split(train_size, &rng);
  std::printf("split: %zu train / %zu test\n", train.size(), test.size());

  tools::ExitIfError(io::SaveRoadNetwork(net, out_dir + "/network.bin"));
  tools::ExitIfError(io::SaveDataset(train, out_dir + "/train.bin"));
  tools::ExitIfError(io::SaveDataset(test, out_dir + "/test.bin"));
  if (flags.GetBool("csv")) {
    tools::ExitIfError(net.SaveCsv(out_dir + "/network"));
    tools::ExitIfError(train.SaveCsv(out_dir + "/train.csv"));
    tools::ExitIfError(test.SaveCsv(out_dir + "/test.csv"));
  }
  std::printf("wrote %s/{network.bin,train.bin,test.bin}\n", out_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace rl4oasd

int main(int argc, char** argv) { return rl4oasd::Main(argc, argv); }
