// oasd_inspect: prints the structure of a model bundle — format version,
// every config key, preprocessor statistics, and tensor shapes — without
// needing the road network it was trained on. Useful for auditing what a
// deployed model was trained with.
//
//   oasd_inspect data/model.rlmb
#include <cstdio>

#include "common/flags.h"
#include "io/model_io.h"
#include "tools/tool_util.h"

namespace rl4oasd {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("oasd_inspect", "describe a model bundle's contents");
  flags.AddBool("tensors", true, "list tensor shapes");
  flags.AddBool("config", true, "list config key-values");
  tools::ParseFlagsOrExit(&flags, argc, argv);
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "usage: oasd_inspect [flags] <model.rlmb>\n\n%s",
                 flags.Help().c_str());
    return 1;
  }

  const auto desc =
      tools::ExitIfError(io::DescribeModel(flags.positional()[0]));
  std::printf("model bundle: %s\n", flags.positional()[0].c_str());
  std::printf("  format version:   %u\n", desc.version);
  std::printf("  history:          %lld trajectories across %zu "
              "(SD pair, slot) groups\n",
              static_cast<long long>(desc.num_trajs), desc.num_groups);
  std::printf("  total weights:    %zu\n", desc.total_weights);

  if (flags.GetBool("tensors")) {
    std::printf("\n  RSRNet tensors:\n");
    for (const auto& t : desc.rsr_tensors) {
      std::printf("    %-24s %6llu x %-6llu\n", t.name.c_str(),
                  static_cast<unsigned long long>(t.rows),
                  static_cast<unsigned long long>(t.cols));
    }
    std::printf("  ASDNet tensors:\n");
    for (const auto& t : desc.asd_tensors) {
      std::printf("    %-24s %6llu x %-6llu\n", t.name.c_str(),
                  static_cast<unsigned long long>(t.rows),
                  static_cast<unsigned long long>(t.cols));
    }
  }
  if (flags.GetBool("config")) {
    std::printf("\n  config:\n");
    for (const auto& [key, value] : desc.config) {
      std::printf("    %-36s %g\n", key.c_str(), value);
    }
  }
  return 0;
}

}  // namespace
}  // namespace rl4oasd

int main(int argc, char** argv) { return rl4oasd::Main(argc, argv); }
