// oasd_inspect: prints the structure of a model bundle — format version,
// every config key, preprocessor statistics, and tensor shapes — without
// needing the road network it was trained on. Useful for auditing what a
// deployed model was trained with. Fleet snapshot files (written by
// serve::FleetMonitor::Snapshot / oasd_simulate --snapshot-every) are
// detected by magic and described too: format version, the model
// fingerprint the snapshot is pinned to, service counters, and the live
// trips with their per-trip progress.
//
//   oasd_inspect data/model.rlmb
//   oasd_inspect data/fleet.snap
#include <cstdio>

#include "common/flags.h"
#include "io/fleet_snapshot.h"
#include "io/model_io.h"
#include "tools/tool_util.h"

namespace rl4oasd {
namespace {

int InspectFleetSnapshot(const std::string& path, bool list_trips) {
  const auto info = tools::ExitIfError(io::DescribeFleetSnapshot(path));
  std::printf("fleet snapshot: %s\n", path.c_str());
  std::printf("  format version:    %u\n", info.version);
  std::printf("  model fingerprint: %016llx\n",
              static_cast<unsigned long long>(info.model_fingerprint));
  if (!info.user_meta.empty()) {
    std::printf("  user metadata:     %s\n", info.user_meta.c_str());
  }
  std::printf("  live trips:        %zu (%llu points of history)\n",
              info.trips.size(),
              static_cast<unsigned long long>(info.total_points));
  std::printf("  counters:          %lld started, %lld finished, "
              "%lld evicted, %lld points, %lld alerts\n",
              static_cast<long long>(info.trips_started),
              static_cast<long long>(info.trips_finished),
              static_cast<long long>(info.trips_evicted),
              static_cast<long long>(info.points_processed),
              static_cast<long long>(info.alerts_emitted));
  if (list_trips) {
    std::printf("\n  trips:\n");
    for (const auto& t : info.trips) {
      std::printf("    vehicle %-10lld %6llu points, started %.0fs, "
                  "last update %.0fs\n",
                  static_cast<long long>(t.vehicle_id),
                  static_cast<unsigned long long>(t.points_fed),
                  t.start_time, t.last_update);
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  FlagSet flags("oasd_inspect",
                "describe a model bundle's or fleet snapshot's contents");
  flags.AddBool("tensors", true, "list tensor shapes (model bundles)");
  flags.AddBool("config", true, "list config key-values (model bundles)");
  flags.AddBool("trips", false, "list per-trip progress (fleet snapshots)");
  tools::ParseFlagsOrExit(&flags, argc, argv);
  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: oasd_inspect [flags] <model.rlmb | fleet.snap>\n\n%s",
                 flags.Help().c_str());
    return 1;
  }

  if (io::LooksLikeFleetSnapshot(flags.positional()[0])) {
    return InspectFleetSnapshot(flags.positional()[0],
                                flags.GetBool("trips"));
  }
  const auto desc =
      tools::ExitIfError(io::DescribeModel(flags.positional()[0]));
  std::printf("model bundle: %s\n", flags.positional()[0].c_str());
  std::printf("  format version:   %u\n", desc.version);
  std::printf("  history:          %lld trajectories across %zu "
              "(SD pair, slot) groups\n",
              static_cast<long long>(desc.num_trajs), desc.num_groups);
  std::printf("  total weights:    %zu\n", desc.total_weights);

  if (flags.GetBool("tensors")) {
    std::printf("\n  RSRNet tensors:\n");
    for (const auto& t : desc.rsr_tensors) {
      std::printf("    %-24s %6llu x %-6llu\n", t.name.c_str(),
                  static_cast<unsigned long long>(t.rows),
                  static_cast<unsigned long long>(t.cols));
    }
    std::printf("  ASDNet tensors:\n");
    for (const auto& t : desc.asd_tensors) {
      std::printf("    %-24s %6llu x %-6llu\n", t.name.c_str(),
                  static_cast<unsigned long long>(t.rows),
                  static_cast<unsigned long long>(t.cols));
    }
  }
  if (flags.GetBool("config")) {
    std::printf("\n  config:\n");
    for (const auto& [key, value] : desc.config) {
      std::printf("    %-36s %g\n", key.c_str(), value);
    }
  }
  return 0;
}

}  // namespace
}  // namespace rl4oasd

int main(int argc, char** argv) { return rl4oasd::Main(argc, argv); }
