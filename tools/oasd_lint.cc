// Repo-invariant linter (see tools/lint/lint_engine.h for the rules and
// docs/STATIC_ANALYSIS.md for where it sits in the CI gate). Usage:
//
//   oasd_lint [repo_root]          lint src/ tests/ tools/ bench/ examples/
//   oasd_lint [repo_root] FILE...  lint specific repo-relative files
//   oasd_lint --list-rules
//
// Exit status is the number of findings capped at 1 — i.e. 0 iff clean —
// so `add_test(... oasd_lint ${CMAKE_SOURCE_DIR})` gates CI directly.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint_engine.h"

namespace {

namespace fs = std::filesystem;

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

/// Repo-relative path with '/' separators (what RulesFor keys on).
std::string RelPath(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--list-rules") {
    for (const std::string& rule : rl4oasd::lint::AllRules()) {
      std::cout << rule << "\n";
    }
    return 0;
  }

  const fs::path root = args.empty() ? fs::path(".") : fs::path(args[0]);
  std::vector<fs::path> files;
  if (args.size() > 1) {
    for (size_t i = 1; i < args.size(); ++i) files.emplace_back(root / args[i]);
  } else {
    for (const char* dir :
         {"src", "tests", "tools", "bench", "examples"}) {
      const fs::path top = root / dir;
      if (!fs::exists(top)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(top)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
    std::sort(files.begin(), files.end());
  }

  size_t checked = 0;
  std::vector<rl4oasd::lint::Finding> findings;
  for (const fs::path& p : files) {
    rl4oasd::lint::FileSpec spec;
    spec.path = RelPath(root, p);
    if (!ReadFile(p, &spec.content)) {
      std::cerr << "oasd_lint: cannot read " << p << "\n";
      return 2;
    }
    ++checked;
    for (auto& f : rl4oasd::lint::LintFile(spec)) {
      findings.push_back(std::move(f));
    }
  }

  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "oasd_lint: " << checked << " files, " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
