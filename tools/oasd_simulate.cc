// oasd_simulate: replays a trajectory dataset against a trained model bundle
// as a live fleet — concurrent trips, multi-threaded ingest, stale-trip
// eviction — and reports alerts and service throughput. This is the
// deployment-shaped counterpart of oasd_detect (which streams one
// trajectory at a time).
//
// Durable serving: --snapshot-every N writes a fleet snapshot (live LSTM
// states, DL windows, RNG positions, counters, and the replay cursor) every
// N points; --resume-from restores one and continues the replay exactly
// where it stopped — the remaining alert stream is bit-identical to the
// uninterrupted run (both require --threads 1, the deterministic replay).
//
// Async serving: --async stages every point through the monitor's
// self-batching shard ingest workers (Submit/SubmitEndTrip, non-blocking)
// with alert delivery on the async delivery worker; the replay threads
// become pure producers and Quiesce() drains the pipeline before the
// summary.
//
// Matched ingest: --matched-ingest replays each trip through the live GPS
// front end — noisy fixes sampled along the ground-truth route (seeded per
// vehicle), matched back to edges by the streaming map matcher — so the
// monitor ingests what a deployment would actually see.
//
//   oasd_simulate --data-dir data --model data/model.rlmb --threads 4
//   oasd_simulate ... --async --ingest-workers 4
//   oasd_simulate ... --matched-ingest --gps-noise 15
//   oasd_simulate ... --threads 1 --snapshot-every 5000
//   oasd_simulate ... --threads 1 --resume-from data/fleet.snap
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/binary.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/rl4oasd.h"
#include "io/model_io.h"
#include "mapmatch/hmm_matcher.h"
#include "mapmatch/streaming_matcher.h"
#include "serve/chaos.h"
#include "serve/drift.h"
#include "serve/fleet.h"
#include "serve/ingest_guard.h"
#include "tools/tool_util.h"
#include "traj/gps_sampler.h"

namespace rl4oasd {
namespace {

/// Replay cursor persisted in the snapshot's user metadata, so a resumed
/// process knows which dataset trips were already started.
constexpr const char kCursorPrefix[] = "oasd_simulate cursor=";

std::string EncodeCursor(size_t next) {
  return kCursorPrefix + std::to_string(next);
}

/// Strict parse of EncodeCursor's output: the whole metadata string must be
/// prefix + digits. Anything else (foreign metadata, a mangled number)
/// rejects, so a resume never silently restarts from cursor 0 and re-feeds
/// trips that already completed.
bool DecodeCursor(const std::string& meta, size_t* next) {
  const size_t prefix_len = sizeof(kCursorPrefix) - 1;
  if (meta.rfind(kCursorPrefix, 0) != 0 || meta.size() == prefix_len) {
    return false;
  }
  const char* digits = meta.c_str() + prefix_len;
  if (*digits < '0' || *digits > '9') return false;
  char* end = nullptr;
  *next = static_cast<size_t>(std::strtoull(digits, &end, 10));
  return end != nullptr && *end == '\0';
}

int Main(int argc, char** argv) {
  FlagSet flags("oasd_simulate",
                "replay a dataset as a live fleet through a trained model");
  flags.AddString("data-dir", "data", "directory with network.bin/test.bin");
  flags.AddString("network", "", "override path to the road network");
  flags.AddString("input", "", "override path to the trajectory dataset");
  flags.AddString("model", "model.rlmb", "trained model bundle");
  flags.AddInt("threads", 4, "ingest threads");
  flags.AddInt("repeat", 1, "replay the dataset this many times");
  flags.AddInt("max-active", 100000, "active-trip cap (evicts stalest)");
  flags.AddInt("batch", 0,
               "concurrent trips per ingest thread, fed one point each per "
               "FeedBatch wave so the model steps fuse (0 = per-point Feed)");
  flags.AddBool("print-alerts", false, "print each alert as it fires");
  flags.AddBool("async", false,
                "stage ingest through the self-batching shard workers "
                "(Submit/SubmitEndTrip) with async alert delivery instead "
                "of feeding inline; --threads become producer threads");
  flags.AddInt("ingest-workers", 4,
               "ingest worker threads behind --async (clamped to the "
               "shard count)");
  flags.AddInt("snapshot-every", 0,
               "write a durable fleet snapshot every N points "
               "(0 = never; requires --threads 1)");
  flags.AddString("snapshot-path", "",
                  "snapshot output path (default <data-dir>/fleet.snap)");
  flags.AddString("resume-from", "",
                  "restore a fleet snapshot and continue the replay from "
                  "its cursor (requires --threads 1 and the same --model)");
  flags.AddInt("max-points", 0,
               "stop feeding after this many points, leaving in-flight "
               "trips live (0 = replay everything; requires --threads 1; "
               "pair with --snapshot-every to simulate a crash at a "
               "snapshot boundary)");
  flags.AddBool("adapt", false,
                "wrap the fleet in the self-updating drift adapter: a "
                "background worker watches alert/NRF rates, fine-tunes on "
                "harvested post-change trips, shadow-gates the candidate, "
                "and hot-swaps it in on promotion");
  flags.AddInt("adapt-window", 512,
               "drift-detector window size in points (with --adapt)");
  flags.AddInt("adapt-min-buffer", 256,
               "harvested trips required before a retrain cycle starts "
               "(with --adapt)");
  flags.AddBool("matched-ingest", false,
                "re-derive each trip's edge stream through the live GPS "
                "front end before ingest: noisy fixes are sampled from the "
                "ground-truth route (seeded per vehicle, so the stream is "
                "thread-count invariant) and matched back to edges by the "
                "streaming map matcher");
  flags.AddDouble("gps-noise", 10.0,
                  "GPS noise sigma in meters for --matched-ingest");
  flags.AddString(
      "chaos", "",
      "perturb the replay stream before ingest with seeded chaos, e.g. "
      "\"drop=0.01,dup=0.02,reorder=0.01,skew=0.005,teleport=0.001,seed=9\" "
      "(see serve/chaos.h for the full key set); also arms the ingest "
      "guard in repair mode with quarantine (malformed budget 8)");
  tools::ParseFlagsOrExit(&flags, argc, argv);

  const std::string data_dir = flags.GetString("data-dir");
  const std::string net_path = flags.GetString("network").empty()
                                   ? data_dir + "/network.bin"
                                   : flags.GetString("network");
  const std::string input_path = flags.GetString("input").empty()
                                     ? data_dir + "/test.bin"
                                     : flags.GetString("input");

  const roadnet::RoadNetwork net = tools::LoadRoadNetworkOrExit(net_path);
  auto model =
      tools::ExitIfError(io::LoadModel(&net, flags.GetString("model")));
  const traj::Dataset input = tools::LoadDatasetOrExit(input_path);

  class Sink : public serve::AlertSink {
   public:
    explicit Sink(bool print) : print_(print) {}
    void OnAlert(const serve::Alert& alert) override {
      count_.fetch_add(1);
      if (print_) {
        std::printf("ALERT vehicle %lld segments [%d,%d)\n",
                    static_cast<long long>(alert.vehicle_id),
                    alert.range.begin, alert.range.end);
      }
    }
    void OnTripEvicted(int64_t vehicle_id, double /*trip_start_time*/,
                       const std::vector<uint8_t>& labels_so_far) override {
      evicted_.fetch_add(1);
      if (print_) {
        std::printf("EVICTED vehicle %lld after %zu segments\n",
                    static_cast<long long>(vehicle_id),
                    labels_so_far.size());
      }
    }
    int64_t count() const { return count_.load(); }
    int64_t evicted() const { return evicted_.load(); }

   private:
    bool print_;
    std::atomic<int64_t> count_{0};
    std::atomic<int64_t> evicted_{0};
  };
  Sink sink(flags.GetBool("print-alerts"));

  const std::string chaos_arg = flags.GetString("chaos");
  const bool chaos = !chaos_arg.empty();
  serve::ChaosSpec chaos_spec;
  if (chaos) {
    chaos_spec = tools::ExitIfError(serve::ParseChaosSpec(chaos_arg));
  }

  serve::FleetConfig fleet_cfg;
  fleet_cfg.max_active_trips =
      static_cast<size_t>(flags.GetInt("max-active"));
  if (chaos) {
    // A degraded stream is the point of the exercise: repair what is
    // repairable, quarantine trips that blow through the budget.
    serve::IngestGuardConfig& g = fleet_cfg.guard;
    g.duplicate_policy = serve::GuardPolicy::kRepair;
    g.out_of_order_policy = serve::GuardPolicy::kRepair;
    g.skew_policy = serve::GuardPolicy::kRepair;
    g.dropout_policy = serve::GuardPolicy::kRepair;
    g.teleport_policy = serve::GuardPolicy::kRepair;
    g.malformed_budget = 8;
  }
  const bool async = flags.GetBool("async");
  if (async) {
    fleet_cfg.ingest_workers = static_cast<size_t>(
        std::max<int64_t>(1, flags.GetInt("ingest-workers")));
    fleet_cfg.async_alerts = true;
  }
  const bool adapt = flags.GetBool("adapt");
  std::shared_ptr<const core::Rl4Oasd> shared_model = std::move(model);
  std::unique_ptr<serve::DriftAdapter> adapter;
  std::unique_ptr<serve::FleetMonitor> plain_monitor;
  if (adapt) {
    serve::DriftConfig drift_cfg;
    drift_cfg.window_points =
        static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("adapt-window")));
    drift_cfg.min_buffer_trips = static_cast<size_t>(
        std::max<int64_t>(1, flags.GetInt("adapt-min-buffer")));
    drift_cfg.max_buffer_trips =
        std::max<size_t>(drift_cfg.max_buffer_trips,
                         2 * drift_cfg.min_buffer_trips);
    drift_cfg.background = true;  // ingest threads never pay for a retrain
    adapter = std::make_unique<serve::DriftAdapter>(
        &net, shared_model, fleet_cfg, drift_cfg, &sink);
  } else {
    plain_monitor =
        std::make_unique<serve::FleetMonitor>(shared_model, fleet_cfg, &sink);
  }
  serve::FleetMonitor& monitor =
      adapt ? *adapter->monitor() : *plain_monitor;

  int threads = std::max(1, static_cast<int>(flags.GetInt("threads")));
  const int repeat = std::max(1, static_cast<int>(flags.GetInt("repeat")));
  size_t batch_size =
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt("batch")));

  const int64_t snapshot_every =
      std::max<int64_t>(0, flags.GetInt("snapshot-every"));
  const int64_t max_points = std::max<int64_t>(0, flags.GetInt("max-points"));
  const std::string snapshot_path = flags.GetString("snapshot-path").empty()
                                        ? data_dir + "/fleet.snap"
                                        : flags.GetString("snapshot-path");
  const std::string resume_path = flags.GetString("resume-from");
  const bool durable_mode =
      snapshot_every > 0 || max_points > 0 || !resume_path.empty();
  if (durable_mode && threads != 1) {
    std::fprintf(stderr,
                 "error: --snapshot-every/--resume-from/--max-points require "
                 "--threads 1 (the deterministic replay)\n");
    return 1;
  }
  if (durable_mode && adapt) {
    std::fprintf(stderr,
                 "error: --adapt cannot be combined with snapshot/resume — "
                 "a hot-swap changes the serving model, and Restore "
                 "fingerprint-guards the snapshot against the model it was "
                 "taken with\n");
    return 1;
  }
  if (chaos && durable_mode) {
    std::fprintf(stderr,
                 "error: --chaos is incompatible with snapshot/resume/"
                 "--max-points — the replay cursor indexes the clean "
                 "dataset, not a perturbed stream\n");
    return 1;
  }
  if (async && (durable_mode || batch_size > 0 || adapt)) {
    std::fprintf(stderr,
                 "error: --async is incompatible with --batch (the ingest "
                 "workers form their own micro-batch waves), with "
                 "snapshot/resume/--max-points (the deterministic replay), "
                 "and with --adapt (the drift adapter harvests labels from "
                 "synchronous sink callbacks)\n");
    return 1;
  }
  const bool matched_ingest = flags.GetBool("matched-ingest");
  const double gps_noise = flags.GetDouble("gps-noise");
  if (matched_ingest && (durable_mode || chaos || batch_size > 0)) {
    std::fprintf(stderr,
                 "error: --matched-ingest supports the per-point and --async "
                 "paths only — the snapshot cursor and --chaos index the "
                 "clean edge stream, and the batched waves assume "
                 "ground-truth trip lengths\n");
    return 1;
  }
  // Snapshot/resume rides the batched loop; --batch 0 degenerates to
  // one-trip waves, which FeedBatch runs through the scalar path.
  if (durable_mode && batch_size == 0) batch_size = 1;

  // The GPS front end for --matched-ingest: one immutable matcher shared by
  // every replay thread (each thread brings its own streaming scratch).
  std::unique_ptr<mapmatch::HmmMapMatcher> gps_matcher;
  if (matched_ingest) {
    gps_matcher = std::make_unique<mapmatch::HmmMapMatcher>(&net);
  }
  std::atomic<int64_t> matched_trips{0};
  std::atomic<int64_t> unmatched_trips{0};

  // Resumed state, keyed back to dataset positions via the deterministic
  // vid = rep * size + index assignment below.
  struct ResumedTrip {
    int64_t vid = 0;
    size_t pos = 0;
  };
  std::vector<ResumedTrip> resumed;
  size_t resume_cursor = 0;
  bool has_resume = false;
  if (!resume_path.empty()) {
    auto reader = tools::ExitIfError(BinaryReader::OpenFile(resume_path));
    serve::FleetMonitor::RestoreInfo rinfo;
    tools::ExitIfError(monitor.Restore(&reader, &rinfo));
    if (!DecodeCursor(rinfo.user_meta, &resume_cursor)) {
      std::fprintf(stderr,
                   "error: snapshot carries no oasd_simulate replay cursor "
                   "(metadata: \"%s\")\n",
                   rinfo.user_meta.c_str());
      return 1;
    }
    for (const auto& t : rinfo.trips) {
      resumed.push_back({t.vehicle_id, t.points_fed});
    }
    has_resume = true;
    std::printf("resumed %zu live trips (cursor %zu) from %s\n",
                resumed.size(), resume_cursor, resume_path.c_str());
  }

  std::printf("replaying %zu trips x%d across %d threads%s...\n",
              input.size(), repeat, threads,
              async         ? " (async staged ingest)"
              : batch_size > 0 ? " (batched ingest)"
                               : "");

  Stopwatch sw;
  std::atomic<int64_t> points{0};
  std::vector<serve::ChaosCounts> chaos_by_thread(
      static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int th = 0; th < threads; ++th) {
    workers.emplace_back([&, th] {
      // This worker's assignments, in replay order.
      std::vector<std::pair<int64_t, const traj::MapMatchedTrajectory*>> todo;
      for (int rep = 0; rep < repeat; ++rep) {
        for (size_t i = static_cast<size_t>(th); i < input.size();
             i += static_cast<size_t>(threads)) {
          if (input[i].traj.edges.size() < 2) continue;
          todo.emplace_back(
              static_cast<int64_t>(rep) * static_cast<int64_t>(input.size()) +
                  static_cast<int64_t>(i),
              &input[i].traj);
        }
      }
      // One injector per worker, distinctly seeded, so the perturbed
      // stream is deterministic for a given (--chaos seed, --threads).
      std::unique_ptr<serve::ChaosInjector> injector;
      if (chaos) {
        serve::ChaosSpec spec = chaos_spec;
        spec.seed = chaos_spec.seed + static_cast<uint64_t>(th);
        injector = std::make_unique<serve::ChaosInjector>(spec, &net);
      }
      // Materializes one trip's clean point stream, perturbs it, and rolls
      // the injector's ground truth into this thread's tally.
      auto perturb_trip = [&](int64_t vid,
                              const traj::MapMatchedTrajectory* t) {
        std::vector<serve::FleetPoint> pts;
        pts.reserve(t->edges.size());
        double ts = t->start_time;
        for (traj::EdgeId e : t->edges) {
          pts.push_back({vid, e, ts});
          ts += 2.0;  // paper's sampling rate
        }
        pts = injector->Perturb(pts);
        const serve::ChaosCounts& c = injector->counts();
        serve::ChaosCounts& tally = chaos_by_thread[static_cast<size_t>(th)];
        tally.input += c.input;
        tally.emitted += c.emitted;
        tally.dropped += c.dropped;
        tally.duplicated += c.duplicated;
        tally.reordered += c.reordered;
        tally.skewed += c.skewed;
        tally.teleported += c.teleported;
        tally.drop_gaps += c.drop_gaps;
        return pts;
      };
      // --matched-ingest: drive the trip through the GPS front end. The
      // sampler is seeded per vehicle (not per thread), so the noisy fixes
      // — and therefore the matched stream — do not depend on --threads.
      std::unique_ptr<mapmatch::StreamingMatcher> stream;
      if (matched_ingest) {
        stream = std::make_unique<mapmatch::StreamingMatcher>(
            gps_matcher.get());
      }
      auto match_trip = [&](int64_t vid, const traj::MapMatchedTrajectory* t) {
        traj::GpsSamplerConfig gps_cfg;
        gps_cfg.noise_sigma_m = gps_noise;
        traj::GpsSampler sampler(&net, gps_cfg,
                                 /*seed=*/1234567u + static_cast<uint64_t>(vid));
        traj::RawTrajectory raw = sampler.Sample(*t);
        stream->Reset(vid);
        for (const traj::RawPoint& pt : raw.points) stream->MatchPoint(pt);
        std::vector<serve::FleetPoint> pts;
        auto matched = stream->Finish();
        if (!matched.ok() || matched->edges.size() < 2) {
          unmatched_trips.fetch_add(1);
          return pts;
        }
        matched_trips.fetch_add(1);
        double ts = matched->start_time;
        pts.reserve(matched->edges.size());
        for (traj::EdgeId e : matched->edges) {
          pts.push_back({vid, e, ts});
          ts += 2.0;  // paper's sampling rate
        }
        return pts;
      };
      if (async) {
        // Producer role: stage everything and move on. The shard workers
        // form the micro-batch waves; a full staging lane applies the
        // configured backpressure (kBlock by default, so nothing drops).
        for (const auto& [vid, t] : todo) {
          if (matched_ingest) {
            const std::vector<serve::FleetPoint> pts = match_trip(vid, t);
            if (pts.empty()) continue;
            if (!monitor.StartTrip(vid, t->sd(), pts.front().timestamp).ok()) {
              continue;
            }
            for (const serve::FleetPoint& p : pts) (void)monitor.Submit(p);
            (void)monitor.SubmitEndTrip(vid);
            points.fetch_add(static_cast<int64_t>(pts.size()));
            continue;
          }
          if (!monitor.StartTrip(vid, t->sd(), t->start_time).ok()) continue;
          if (injector) {
            const std::vector<serve::FleetPoint> pts = perturb_trip(vid, t);
            for (const serve::FleetPoint& p : pts) (void)monitor.Submit(p);
            (void)monitor.SubmitEndTrip(vid);
            points.fetch_add(static_cast<int64_t>(pts.size()));
            continue;
          }
          double ts = t->start_time;
          for (traj::EdgeId e : t->edges) {
            (void)monitor.Submit({vid, e, ts});
            ts += 2.0;  // paper's sampling rate
          }
          (void)monitor.SubmitEndTrip(vid);
          points.fetch_add(static_cast<int64_t>(t->edges.size()));
        }
        return;
      }
      if (batch_size == 0) {
        for (const auto& [vid, t] : todo) {
          if (matched_ingest) {
            const std::vector<serve::FleetPoint> pts = match_trip(vid, t);
            if (pts.empty()) continue;
            if (!monitor.StartTrip(vid, t->sd(), pts.front().timestamp).ok()) {
              continue;
            }
            for (const serve::FleetPoint& p : pts) {
              (void)monitor.Feed(p.vehicle_id, p.edge, p.timestamp);
            }
            (void)monitor.EndTrip(vid);
            points.fetch_add(static_cast<int64_t>(pts.size()));
            continue;
          }
          if (!monitor.StartTrip(vid, t->sd(), t->start_time).ok()) continue;
          if (injector) {
            const std::vector<serve::FleetPoint> pts = perturb_trip(vid, t);
            for (const serve::FleetPoint& p : pts) {
              (void)monitor.Feed(p.vehicle_id, p.edge, p.timestamp);
            }
            (void)monitor.EndTrip(vid);
            points.fetch_add(static_cast<int64_t>(pts.size()));
            continue;
          }
          double ts = t->start_time;
          for (traj::EdgeId e : t->edges) {
            (void)monitor.Feed(vid, e, ts);
            ts += 2.0;  // paper's sampling rate
          }
          (void)monitor.EndTrip(vid);
          points.fetch_add(static_cast<int64_t>(t->edges.size()));
        }
        return;
      }
      // Batched ingest: a rolling window of `batch_size` concurrent trips,
      // one point per live trip per wave, so FeedBatch fuses the whole
      // wave's model steps (a batch of one vehicle's points would fall
      // back to scalar one-point waves).
      struct Live {
        const traj::MapMatchedTrajectory* t;
        int64_t vid;
        size_t pos = 0;
        double ts = 0.0;
        /// Under --chaos, the trip's perturbed stream; fed by position
        /// instead of indexing the clean edge vector.
        std::vector<serve::FleetPoint> pts;
      };
      std::vector<Live> live;
      size_t next = 0;
      if (has_resume) {
        // Rebuild the rolling window from the restored trips: each resumed
        // vid maps back to its dataset trajectory (vid = rep * size + i)
        // and continues from the exact point the snapshot recorded. The
        // model is fingerprint-guarded by Restore, but the dataset is not
        // stamped — validate every cursor against the actual trajectory so
        // a resume against the wrong (or regenerated) dataset fails
        // cleanly instead of indexing past an edge vector.
        next = resume_cursor;
        for (const ResumedTrip& rt : resumed) {
          const auto& t =
              input[static_cast<size_t>(rt.vid) % input.size()].traj;
          if (rt.pos >= t.edges.size() || next > todo.size()) {
            std::fprintf(stderr,
                         "error: snapshot does not match the replay dataset "
                         "(vehicle %lld has %zu points of history, "
                         "trajectory has %zu edges; cursor %zu of %zu) — "
                         "resume with the dataset the snapshot was taken "
                         "from\n",
                         static_cast<long long>(rt.vid), rt.pos,
                         t.edges.size(), next, todo.size());
            std::exit(1);
          }
          live.push_back({&t, rt.vid, rt.pos,
                          t.start_time + 2.0 * static_cast<double>(rt.pos),
                          {}});
        }
      }
      int64_t fed_points = 0;
      int64_t next_snap = snapshot_every;
      auto refill = [&] {
        while (live.size() < batch_size && next < todo.size()) {
          const auto& [vid, t] = todo[next++];
          if (!monitor.StartTrip(vid, t->sd(), t->start_time).ok()) continue;
          Live l{t, vid, 0, t->start_time, {}};
          if (injector) {
            l.pts = perturb_trip(vid, t);
            if (l.pts.empty()) {
              // Every point dropped: the trip starts and ends empty.
              (void)monitor.EndTrip(vid);
              continue;
            }
          }
          live.push_back(std::move(l));
        }
      };
      std::vector<serve::FleetPoint> wave;
      wave.reserve(batch_size);
      refill();
      while (!live.empty()) {
        wave.clear();
        for (const Live& l : live) {
          wave.push_back(injector
                             ? l.pts[l.pos]
                             : serve::FleetPoint{l.vid, l.t->edges[l.pos],
                                                 l.ts});
        }
        (void)monitor.FeedBatch(wave);
        fed_points += static_cast<int64_t>(wave.size());
        // Count points as fed, not at trip completion: a resumed run must
        // not claim the pre-crash history and a --max-points run must
        // count its live trips' points, or the points/s summary lies.
        points.fetch_add(static_cast<int64_t>(wave.size()));
        for (Live& l : live) {
          ++l.pos;
          l.ts += 2.0;
        }
        for (size_t k = live.size(); k-- > 0;) {
          const size_t len =
              injector ? live[k].pts.size() : live[k].t->edges.size();
          if (live[k].pos == len) {
            (void)monitor.EndTrip(live[k].vid);
            live.erase(live.begin() + static_cast<ptrdiff_t>(k));
          }
        }
        refill();
        if (snapshot_every > 0 && fed_points >= next_snap) {
          next_snap += snapshot_every;
          // After refill, trips todo[0, next) are started or done, so the
          // cursor is exactly `next`; a resume restores the live window and
          // continues the replay from here.
          BinaryWriter w;
          tools::ExitIfError(monitor.Snapshot(&w, EncodeCursor(next)));
          tools::ExitIfError(w.WriteToFile(snapshot_path));
          std::printf("snapshot: %s (cursor %zu, %zu live trips)\n",
                      snapshot_path.c_str(), next, monitor.ActiveTrips());
        }
        if (max_points > 0 && fed_points >= max_points) {
          std::printf("stopping after %lld points (%zu trips still live)\n",
                      static_cast<long long>(fed_points),
                      monitor.ActiveTrips());
          break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Producers only staged work in async mode; the wall clock must cover the
  // drain, or points/s would count staged-not-processed points.
  if (async) monitor.Quiesce();
  const double elapsed = sw.ElapsedSeconds();

  const serve::FleetStats stats = monitor.Stats();
  std::printf("\nfleet summary (%.2fs wall):\n", elapsed);
  std::printf("  trips:      %lld started, %lld finished, %lld evicted\n",
              static_cast<long long>(stats.trips_started),
              static_cast<long long>(stats.trips_finished),
              static_cast<long long>(stats.trips_evicted));
  std::printf("  points:     %lld (%.0f points/s, %.2f us/point)\n",
              static_cast<long long>(stats.points_processed),
              static_cast<double>(points.load()) / elapsed,
              elapsed * 1e6 / static_cast<double>(std::max<int64_t>(
                                  1, points.load())));
  std::printf("  alerts:     %lld (%lld eviction notices)\n",
              static_cast<long long>(sink.count()),
              static_cast<long long>(sink.evicted()));
  if (async) {
    std::printf("  staging:    %lld submitted, %lld shed, %lld alerts "
                "delivered\n",
                static_cast<long long>(stats.points_submitted),
                static_cast<long long>(stats.points_shed),
                static_cast<long long>(stats.alerts_delivered));
  }
  if (matched_ingest) {
    std::printf("  matched:    %lld trips via the GPS front end, %lld "
                "unmatched/skipped (noise sigma %.1f m)\n",
                static_cast<long long>(matched_trips.load()),
                static_cast<long long>(unmatched_trips.load()), gps_noise);
  }
  if (chaos) {
    serve::ChaosCounts cc;
    for (const serve::ChaosCounts& c : chaos_by_thread) {
      cc.input += c.input;
      cc.emitted += c.emitted;
      cc.dropped += c.dropped;
      cc.duplicated += c.duplicated;
      cc.reordered += c.reordered;
      cc.skewed += c.skewed;
      cc.teleported += c.teleported;
      cc.drop_gaps += c.drop_gaps;
    }
    std::printf("  chaos:      %lld clean -> %lld perturbed points "
                "(%lld dropped, %lld duplicated, %lld reordered, "
                "%lld skewed, %lld teleported, %lld gap events)\n",
                static_cast<long long>(cc.input),
                static_cast<long long>(cc.emitted),
                static_cast<long long>(cc.dropped),
                static_cast<long long>(cc.duplicated),
                static_cast<long long>(cc.reordered),
                static_cast<long long>(cc.skewed),
                static_cast<long long>(cc.teleported),
                static_cast<long long>(cc.drop_gaps));
    std::printf("  guard:      %lld repaired, %lld rejected, %lld "
                "quarantine-dropped; trips %lld quarantined, %lld "
                "recovered, %lld evicted\n",
                static_cast<long long>(stats.points_repaired),
                static_cast<long long>(stats.points_rejected),
                static_cast<long long>(stats.points_quarantine_dropped),
                static_cast<long long>(stats.trips_quarantined),
                static_cast<long long>(stats.trips_recovered),
                static_cast<long long>(stats.quarantine_evictions));
  }
  if (adapt) {
    // Ingest is done; wait for the background worker to drain the harvest
    // queue and resolve any in-flight retrain cycle so the summary is
    // complete rather than a mid-cycle snapshot.
    serve::DriftStatus ds = adapter->Status();
    while (ds.pending_trips > 0 ||
           ds.cycles_started >
               ds.promotions + ds.rejections + ds.cycle_errors) {
      std::this_thread::yield();
      ds = adapter->Status();
    }
    std::printf("  drift:      %llu events, %llu cycles (%llu promoted, "
                "%llu rejected, %llu errors)\n",
                static_cast<unsigned long long>(ds.drift_events),
                static_cast<unsigned long long>(ds.cycles_started),
                static_cast<unsigned long long>(ds.promotions),
                static_cast<unsigned long long>(ds.rejections),
                static_cast<unsigned long long>(ds.cycle_errors));
    std::printf("  harvest:    %llu trips (%llu buffered, %llu dropped)\n",
                static_cast<unsigned long long>(ds.trips_harvested),
                static_cast<unsigned long long>(ds.buffer_trips),
                static_cast<unsigned long long>(ds.buffer_evictions));
    std::printf("  serving:    model generation %llu",
                static_cast<unsigned long long>(ds.model_generation));
    if (ds.cycles_started > 0) {
      std::printf(" (last gate: live %.3f vs candidate %.3f)",
                  ds.last_live_score, ds.last_candidate_score);
    }
    std::printf("\n");
  }
  const std::string metrics =
      adapt ? adapter->DumpMetrics() : monitor.DumpMetrics();
  std::printf("\nmetrics:\n%s", metrics.c_str());
  return 0;
}

}  // namespace
}  // namespace rl4oasd

int main(int argc, char** argv) { return rl4oasd::Main(argc, argv); }
