// oasd_simulate: replays a trajectory dataset against a trained model bundle
// as a live fleet — concurrent trips, multi-threaded ingest, stale-trip
// eviction — and reports alerts and service throughput. This is the
// deployment-shaped counterpart of oasd_detect (which streams one
// trajectory at a time).
//
//   oasd_simulate --data-dir data --model data/model.rlmb --threads 4
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/rl4oasd.h"
#include "io/model_io.h"
#include "serve/fleet.h"
#include "tools/tool_util.h"

namespace rl4oasd {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("oasd_simulate",
                "replay a dataset as a live fleet through a trained model");
  flags.AddString("data-dir", "data", "directory with network.bin/test.bin");
  flags.AddString("network", "", "override path to the road network");
  flags.AddString("input", "", "override path to the trajectory dataset");
  flags.AddString("model", "model.rlmb", "trained model bundle");
  flags.AddInt("threads", 4, "ingest threads");
  flags.AddInt("repeat", 1, "replay the dataset this many times");
  flags.AddInt("max-active", 100000, "active-trip cap (evicts stalest)");
  flags.AddInt("batch", 0,
               "concurrent trips per ingest thread, fed one point each per "
               "FeedBatch wave so the model steps fuse (0 = per-point Feed)");
  flags.AddBool("print-alerts", false, "print each alert as it fires");
  tools::ParseFlagsOrExit(&flags, argc, argv);

  const std::string data_dir = flags.GetString("data-dir");
  const std::string net_path = flags.GetString("network").empty()
                                   ? data_dir + "/network.bin"
                                   : flags.GetString("network");
  const std::string input_path = flags.GetString("input").empty()
                                     ? data_dir + "/test.bin"
                                     : flags.GetString("input");

  const roadnet::RoadNetwork net = tools::LoadRoadNetworkOrExit(net_path);
  auto model =
      tools::ExitIfError(io::LoadModel(&net, flags.GetString("model")));
  const traj::Dataset input = tools::LoadDatasetOrExit(input_path);

  class Sink : public serve::AlertSink {
   public:
    explicit Sink(bool print) : print_(print) {}
    void OnAlert(const serve::Alert& alert) override {
      count_.fetch_add(1);
      if (print_) {
        std::printf("ALERT vehicle %lld segments [%d,%d)\n",
                    static_cast<long long>(alert.vehicle_id),
                    alert.range.begin, alert.range.end);
      }
    }
    void OnTripEvicted(int64_t vehicle_id, double /*trip_start_time*/,
                       const std::vector<uint8_t>& labels_so_far) override {
      evicted_.fetch_add(1);
      if (print_) {
        std::printf("EVICTED vehicle %lld after %zu segments\n",
                    static_cast<long long>(vehicle_id),
                    labels_so_far.size());
      }
    }
    int64_t count() const { return count_.load(); }
    int64_t evicted() const { return evicted_.load(); }

   private:
    bool print_;
    std::atomic<int64_t> count_{0};
    std::atomic<int64_t> evicted_{0};
  };
  Sink sink(flags.GetBool("print-alerts"));

  serve::FleetConfig fleet_cfg;
  fleet_cfg.max_active_trips =
      static_cast<size_t>(flags.GetInt("max-active"));
  serve::FleetMonitor monitor(model.get(), fleet_cfg, &sink);

  const int threads = std::max(1, static_cast<int>(flags.GetInt("threads")));
  const int repeat = std::max(1, static_cast<int>(flags.GetInt("repeat")));
  const size_t batch_size =
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt("batch")));
  std::printf("replaying %zu trips x%d across %d threads%s...\n",
              input.size(), repeat, threads,
              batch_size > 0 ? " (batched ingest)" : "");

  Stopwatch sw;
  std::atomic<int64_t> points{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int th = 0; th < threads; ++th) {
    workers.emplace_back([&, th] {
      // This worker's assignments, in replay order.
      std::vector<std::pair<int64_t, const traj::MapMatchedTrajectory*>> todo;
      for (int rep = 0; rep < repeat; ++rep) {
        for (size_t i = static_cast<size_t>(th); i < input.size();
             i += static_cast<size_t>(threads)) {
          if (input[i].traj.edges.size() < 2) continue;
          todo.emplace_back(
              static_cast<int64_t>(rep) * static_cast<int64_t>(input.size()) +
                  static_cast<int64_t>(i),
              &input[i].traj);
        }
      }
      if (batch_size == 0) {
        for (const auto& [vid, t] : todo) {
          if (!monitor.StartTrip(vid, t->sd(), t->start_time).ok()) continue;
          double ts = t->start_time;
          for (traj::EdgeId e : t->edges) {
            (void)monitor.Feed(vid, e, ts);
            ts += 2.0;  // paper's sampling rate
          }
          (void)monitor.EndTrip(vid);
          points.fetch_add(static_cast<int64_t>(t->edges.size()));
        }
        return;
      }
      // Batched ingest: a rolling window of `batch_size` concurrent trips,
      // one point per live trip per wave, so FeedBatch fuses the whole
      // wave's model steps (a batch of one vehicle's points would fall
      // back to scalar one-point waves).
      struct Live {
        const traj::MapMatchedTrajectory* t;
        int64_t vid;
        size_t pos = 0;
        double ts = 0.0;
      };
      std::vector<Live> live;
      size_t next = 0;
      auto refill = [&] {
        while (live.size() < batch_size && next < todo.size()) {
          const auto& [vid, t] = todo[next++];
          if (monitor.StartTrip(vid, t->sd(), t->start_time).ok()) {
            live.push_back({t, vid, 0, t->start_time});
          }
        }
      };
      std::vector<serve::FleetPoint> wave;
      wave.reserve(batch_size);
      refill();
      while (!live.empty()) {
        wave.clear();
        for (const Live& l : live) {
          wave.push_back({l.vid, l.t->edges[l.pos], l.ts});
        }
        (void)monitor.FeedBatch(wave);
        for (Live& l : live) {
          ++l.pos;
          l.ts += 2.0;
        }
        for (size_t k = live.size(); k-- > 0;) {
          if (live[k].pos == live[k].t->edges.size()) {
            (void)monitor.EndTrip(live[k].vid);
            points.fetch_add(static_cast<int64_t>(live[k].t->edges.size()));
            live.erase(live.begin() + static_cast<ptrdiff_t>(k));
          }
        }
        refill();
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = sw.ElapsedSeconds();

  const serve::FleetStats stats = monitor.Stats();
  std::printf("\nfleet summary (%.2fs wall):\n", elapsed);
  std::printf("  trips:      %lld started, %lld finished, %lld evicted\n",
              static_cast<long long>(stats.trips_started),
              static_cast<long long>(stats.trips_finished),
              static_cast<long long>(stats.trips_evicted));
  std::printf("  points:     %lld (%.0f points/s, %.2f us/point)\n",
              static_cast<long long>(stats.points_processed),
              static_cast<double>(points.load()) / elapsed,
              elapsed * 1e6 / static_cast<double>(std::max<int64_t>(
                                  1, points.load())));
  std::printf("  alerts:     %lld (%lld eviction notices)\n",
              static_cast<long long>(sink.count()),
              static_cast<long long>(sink.evicted()));
  return 0;
}

}  // namespace
}  // namespace rl4oasd

int main(int argc, char** argv) { return rl4oasd::Main(argc, argv); }
