// oasd_train: trains an RL4OASD model on a generated workload and writes a
// serving-ready model bundle.
//
//   oasd_train --data-dir data --model data/model.rlmb
//
// The full pipeline runs: preprocessing (SD-pair/time-slot statistics, noisy
// labels), Toast-substitute embedding pre-training, RSRNet/ASDNet warm
// start, and iterative joint training (paper Section IV-E).
#include <cstdio>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/rl4oasd.h"
#include "io/model_io.h"
#include "tools/tool_util.h"

namespace rl4oasd {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("oasd_train", "train an RL4OASD model bundle");
  flags.AddString("data-dir", "data",
                  "directory holding network.bin and train.bin "
                  "(see oasd_gen)");
  flags.AddString("network", "", "override path to the road network");
  flags.AddString("train", "", "override path to the training dataset");
  flags.AddString("model", "model.rlmb", "output model bundle path");
  flags.AddDouble("alpha", 0.1,
                  "noisy-label threshold (paper: 0.5 on DiDi data; 0.1 is\n"
                  "                  tuned for the synthetic workload)");
  flags.AddDouble("delta", 0.12,
                  "normal-route threshold (paper: 0.4; 0.12 tuned for the\n"
                  "                  synthetic workload)");
  flags.AddInt("delay-d", 2,
               "delayed-labeling lookahead D (paper: 8; 2 tuned for the\n"
               "               synthetic workload)");
  flags.AddInt("hidden-dim", 64, "LSTM hidden units (paper: 128)");
  flags.AddInt("embed-dim", 64, "road-segment embedding size (paper: 128)");
  flags.AddInt("joint-samples", 10000,
               "trajectories sampled for joint training (paper: 10,000)");
  flags.AddInt("pretrain-samples", 200,
               "trajectories for the warm start (paper: 200)");
  flags.AddBool("rnel", true, "road-network-enhanced labeling");
  flags.AddBool("dl", true, "delayed labeling");
  flags.AddInt("seed", 5, "training seed");
  flags.AddInt("trainer-threads", 1,
               "data-parallel pretrain workers (1 = sequential,\n"
               "               bit-identical to historical training; N > 1\n"
               "               shards the warm start across N threads)");
  flags.AddBool("time", false,
                "print the per-phase training wall-clock breakdown\n"
                "               (embed / pretrain / joint)");
  tools::ParseFlagsOrExit(&flags, argc, argv);

  const std::string data_dir = flags.GetString("data-dir");
  const std::string net_path = flags.GetString("network").empty()
                                   ? data_dir + "/network.bin"
                                   : flags.GetString("network");
  const std::string train_path = flags.GetString("train").empty()
                                     ? data_dir + "/train.bin"
                                     : flags.GetString("train");

  const roadnet::RoadNetwork net = tools::LoadRoadNetworkOrExit(net_path);
  const traj::Dataset train = tools::LoadDatasetOrExit(train_path);
  std::printf("loaded %zu segments, %zu training trajectories (%zu SD pairs)\n",
              net.NumEdges(), train.size(), train.NumSdPairs());

  core::Rl4OasdConfig cfg;
  cfg.preprocess.alpha = flags.GetDouble("alpha");
  cfg.preprocess.delta = flags.GetDouble("delta");
  cfg.detector.delay_d = static_cast<int>(flags.GetInt("delay-d"));
  cfg.detector.use_rnel = flags.GetBool("rnel");
  cfg.detector.use_dl = flags.GetBool("dl");
  cfg.rsr.hidden_dim = static_cast<size_t>(flags.GetInt("hidden-dim"));
  cfg.rsr.embed_dim = static_cast<size_t>(flags.GetInt("embed-dim"));
  cfg.embedding.dim = cfg.rsr.embed_dim;
  cfg.joint_samples = static_cast<int>(flags.GetInt("joint-samples"));
  cfg.pretrain_samples = static_cast<int>(flags.GetInt("pretrain-samples"));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  cfg.trainer_threads = static_cast<int>(flags.GetInt("trainer-threads"));

  core::Rl4Oasd model(&net, cfg);
  Stopwatch sw;
  model.Fit(train);
  const double train_s = sw.ElapsedSeconds();
  const auto& stats = model.joint_stats();
  std::printf(
      "training done in %.1fs: %lld episodes, %lld policy updates applied, "
      "mean episode reward %.4f\n",
      train_s, static_cast<long long>(stats.episodes),
      static_cast<long long>(stats.applied), model.last_mean_reward());
  if (flags.GetBool("time")) {
    const auto& ft = model.fit_timings();
    std::printf(
        "phase breakdown (%d trainer thread%s):\n"
        "  preprocess   %8.2fs\n"
        "  embed        %8.2fs\n"
        "  pretrain-rsr %8.2fs\n"
        "  pretrain-asd %8.2fs\n"
        "  joint        %8.2fs\n"
        "  total        %8.2fs\n",
        cfg.trainer_threads, cfg.trainer_threads == 1 ? "" : "s",
        ft.preprocess_s, ft.embed_s, ft.pretrain_rsr_s, ft.pretrain_asd_s,
        ft.joint_s, ft.total_s);
  }

  const std::string model_path = flags.GetString("model");
  tools::ExitIfError(io::SaveModel(model, model_path));
  std::printf("wrote %s\n", model_path.c_str());
  return 0;
}

}  // namespace
}  // namespace rl4oasd

int main(int argc, char** argv) { return rl4oasd::Main(argc, argv); }
