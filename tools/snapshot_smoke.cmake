# Snapshot round-trip smoke (ctest target `snapshot_roundtrip_smoke`):
# generate a tiny fleet workload, train a tiny model, replay to a mid-stream
# snapshot and stop (a simulated crash at a snapshot boundary), resume in a
# fresh process, and require the union of the crash-run and resumed-run
# alert streams to equal the uninterrupted run's alert stream exactly.
#
# On failure the work dir — including fleet.snap, the three replay logs, and
# the model bundle — is left behind for triage; the CI jobs upload it as an
# artifact. On success it is removed.
#
# Expected -D variables: OASD_GEN OASD_TRAIN OASD_SIMULATE OASD_INSPECT
# WORK_DIR

foreach(var OASD_GEN OASD_TRAIN OASD_SIMULATE OASD_INSPECT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "snapshot_smoke.cmake: missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step log_name)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_FILE ${WORK_DIR}/${log_name}
    ERROR_FILE ${WORK_DIR}/${log_name})
  if(NOT rc EQUAL 0)
    file(READ ${WORK_DIR}/${log_name} log)
    message(FATAL_ERROR "step '${log_name}' failed (${rc}):\n${log}")
  endif()
endfunction()

# Tiny but alert-rich workload: high anomaly ratio so the equivalence check
# is not vacuous, fixed seeds so the replay is deterministic.
run_step(gen.log ${OASD_GEN} --out-dir ${WORK_DIR}
  --grid-rows 10 --grid-cols 10 --pairs 6 --min-trajs 30 --max-trajs 60
  --train-size 400 --min-pair-dist 800 --max-pair-dist 2500
  --anomaly-ratio 0.3)
run_step(train.log ${OASD_TRAIN} --data-dir ${WORK_DIR}
  --model ${WORK_DIR}/model.rlmb --hidden-dim 16 --embed-dim 16
  --pretrain-samples 60 --joint-samples 120)

# Reference: the uninterrupted replay.
run_step(full.log ${OASD_SIMULATE} --data-dir ${WORK_DIR}
  --model ${WORK_DIR}/model.rlmb --threads 1 --batch 4 --print-alerts)

# Crash at the first snapshot boundary (~mid-stream of the ~1.6k points).
run_step(crash.log ${OASD_SIMULATE} --data-dir ${WORK_DIR}
  --model ${WORK_DIR}/model.rlmb --threads 1 --batch 4 --print-alerts
  --snapshot-every 800 --max-points 800
  --snapshot-path ${WORK_DIR}/fleet.snap)

# The snapshot must describe cleanly (exercises oasd_inspect dispatch).
run_step(inspect.log ${OASD_INSPECT} ${WORK_DIR}/fleet.snap --trips)

# Fresh-process resume from the snapshot.
run_step(resume.log ${OASD_SIMULATE} --data-dir ${WORK_DIR}
  --model ${WORK_DIR}/model.rlmb --threads 1 --batch 4 --print-alerts
  --resume-from ${WORK_DIR}/fleet.snap)

# Per-vehicle alert multisets must match exactly: sort the ALERT lines of
# the uninterrupted run against crash + resume combined.
function(alert_lines out)
  set(lines)
  foreach(log ${ARGN})
    file(READ ${WORK_DIR}/${log} content)
    # An unbalanced "[" inside a CMake list element swallows the ";"
    # separators that follow it; the alert ranges print as "[a,b)", so
    # normalize the bracket away before any list operation.
    string(REPLACE "[" "<" content "${content}")
    string(REPLACE "\n" ";" content "${content}")
    foreach(line ${content})
      if(line MATCHES "^ALERT ")
        list(APPEND lines "${line}")
      endif()
    endforeach()
  endforeach()
  list(SORT lines)
  set(${out} "${lines}" PARENT_SCOPE)
endfunction()

alert_lines(full_alerts full.log)
alert_lines(split_alerts crash.log resume.log)

list(LENGTH full_alerts n_full)
if(n_full EQUAL 0)
  message(FATAL_ERROR
    "smoke is vacuous: the uninterrupted replay produced no alerts")
endif()
if(NOT "${full_alerts}" STREQUAL "${split_alerts}")
  message(FATAL_ERROR
    "restore-equivalence violated: uninterrupted alerts != crash+resume "
    "alerts\n--- uninterrupted ---\n${full_alerts}\n--- crash+resume ---\n"
    "${split_alerts}\n(work dir kept at ${WORK_DIR})")
endif()

message(STATUS "snapshot smoke OK: ${n_full} alerts identical across the "
  "crash/resume boundary")
file(REMOVE_RECURSE ${WORK_DIR})
