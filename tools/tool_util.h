// Shared helpers for the tools/ binaries: uniform error exit, timing, and
// loading road networks / datasets with format auto-detection (binary .bin
// vs CSV).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/flags.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "io/dataset_io.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"

namespace rl4oasd::tools {

/// Prints the error and exits with status 1 when `st` is not OK.
inline void ExitIfError(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T ExitIfError(Result<T> result) {
  ExitIfError(result.status());
  return std::move(result).value();
}

/// Parses flags; prints help and exits 0 on --help, exits 1 on bad flags.
inline void ParseFlagsOrExit(FlagSet* flags, int argc,
                             const char* const* argv) {
  const Status st = flags->Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n\n%s", st.ToString().c_str(),
                 flags->Help().c_str());
    std::exit(1);
  }
  if (flags->help_requested()) {
    std::fprintf(stdout, "%s", flags->Help().c_str());
    std::exit(0);
  }
}

inline bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Loads a road network: `.bin` files use the binary format, anything else
/// is treated as a CSV prefix (<prefix>.vertices.csv / <prefix>.edges.csv).
inline roadnet::RoadNetwork LoadRoadNetworkOrExit(const std::string& path) {
  if (HasSuffix(path, ".bin")) {
    return ExitIfError(io::LoadRoadNetwork(path));
  }
  return ExitIfError(roadnet::RoadNetwork::LoadCsv(path));
}

/// Loads a dataset: `.bin` binary, otherwise CSV.
inline traj::Dataset LoadDatasetOrExit(const std::string& path) {
  if (HasSuffix(path, ".bin")) {
    return ExitIfError(io::LoadDataset(path));
  }
  return ExitIfError(traj::Dataset::LoadCsv(path));
}

}  // namespace rl4oasd::tools
